//! Total functional semantics, shared by the in-order oracle emulator and
//! the out-of-order pipeline's execute stage.
//!
//! Keeping semantics in exactly one place is what makes the simulator's
//! central invariant checkable: the out-of-order core and the oracle cannot
//! disagree about *what* an instruction computes, only about *when*.

use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::INST_BYTES;

/// Everything an instruction's execution produces, before memory is
/// consulted.
///
/// * ALU/FP operations fill `result`.
/// * Loads fill `ea`; the caller reads memory and applies
///   [`load_extend`].
/// * Stores fill `ea` and `store_value`.
/// * Control instructions fill `taken` and (when taken) `target`; calls
///   also fill `result` with the return address.
/// * `halt` marks the architectural stop condition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value to write to `rd`, when computable without memory.
    pub result: Option<u64>,
    /// Effective address for memory operations.
    pub ea: Option<u64>,
    /// Datum for stores.
    pub store_value: Option<u64>,
    /// Branch/jump direction (`None` for non-control instructions).
    pub taken: Option<bool>,
    /// Control-flow target when `taken == Some(true)`.
    pub target: Option<u64>,
    /// `true` only for `halt`.
    pub halt: bool,
}

#[inline]
fn f(bits: u64) -> f64 {
    f64::from_bits(bits)
}

#[inline]
fn b(v: f64) -> u64 {
    v.to_bits()
}

/// RISC-V-style total signed division: x/0 = -1, overflow wraps.
#[inline]
fn div_total(a: i64, d: i64) -> i64 {
    if d == 0 {
        -1
    } else {
        a.wrapping_div(d)
    }
}

/// RISC-V-style total signed remainder: x%0 = x, overflow yields 0.
#[inline]
fn rem_total(a: i64, d: i64) -> i64 {
    if d == 0 {
        a
    } else {
        a.wrapping_rem(d)
    }
}

/// Saturating `f64`→`i64` conversion (Rust `as` semantics: NaN → 0).
#[inline]
fn cvt_f_to_i(v: f64) -> i64 {
    v as i64
}

/// Computes the target of a PC-relative control transfer whose immediate is
/// a displacement in *instructions* from the fall-through point.
///
/// Exposed so the pipeline can materialize a branch target when a fault
/// flips a not-taken direction to taken.
///
/// # Examples
///
/// ```
/// assert_eq!(ftsim_isa::direct_target(0x1000, 2), 0x100c);
/// assert_eq!(ftsim_isa::direct_target(0x1000, -1), 0x1000);
/// ```
#[inline]
pub fn direct_target(pc: u64, imm: i32) -> u64 {
    pc.wrapping_add(INST_BYTES as u64)
        .wrapping_add((imm as i64 as u64).wrapping_mul(INST_BYTES as u64))
}

pub(crate) use direct_target as rel_target;

/// Executes `inst` at `pc` given its (already-read) source operand values.
///
/// `rs1` and `rs2` are raw 64-bit register values; unused operands are
/// ignored. The function is *total*: it never panics on any input, which
/// lets the out-of-order core execute wrong-path instructions with garbage
/// operands safely.
///
/// # Examples
///
/// ```
/// use ftsim_isa::{execute, Inst, Opcode};
///
/// let add = Inst::new(Opcode::Add, 3, 1, 2, 0);
/// let out = execute(&add, 0x1000, 7, 5);
/// assert_eq!(out.result, Some(12));
///
/// let div = Inst::new(Opcode::Div, 3, 1, 2, 0);
/// let out = execute(&div, 0x1000, 7, 0); // division by zero is defined
/// assert_eq!(out.result, Some(u64::MAX));
/// ```
pub fn execute(inst: &Inst, pc: u64, rs1: u64, rs2: u64) -> ExecOutcome {
    use Opcode::*;
    let imm64 = inst.imm as i64 as u64;
    let mut out = ExecOutcome::default();
    match inst.op {
        Add => out.result = Some(rs1.wrapping_add(rs2)),
        Sub => out.result = Some(rs1.wrapping_sub(rs2)),
        And => out.result = Some(rs1 & rs2),
        Or => out.result = Some(rs1 | rs2),
        Xor => out.result = Some(rs1 ^ rs2),
        Nor => out.result = Some(!(rs1 | rs2)),
        Sll => out.result = Some(rs1.wrapping_shl(rs2 as u32 & 63)),
        Srl => out.result = Some(rs1.wrapping_shr(rs2 as u32 & 63)),
        Sra => out.result = Some(((rs1 as i64).wrapping_shr(rs2 as u32 & 63)) as u64),
        Slt => out.result = Some(u64::from((rs1 as i64) < (rs2 as i64))),
        Sltu => out.result = Some(u64::from(rs1 < rs2)),
        Addi => out.result = Some(rs1.wrapping_add(imm64)),
        Andi => out.result = Some(rs1 & imm64),
        Ori => out.result = Some(rs1 | imm64),
        Xori => out.result = Some(rs1 ^ imm64),
        Slti => out.result = Some(u64::from((rs1 as i64) < (imm64 as i64))),
        Slli => out.result = Some(rs1.wrapping_shl(inst.imm as u32 & 63)),
        Srli => out.result = Some(rs1.wrapping_shr(inst.imm as u32 & 63)),
        Srai => out.result = Some(((rs1 as i64).wrapping_shr(inst.imm as u32 & 63)) as u64),
        Lui => out.result = Some(imm64.wrapping_shl(16)),
        Mul => out.result = Some(rs1.wrapping_mul(rs2)),
        Div => out.result = Some(div_total(rs1 as i64, rs2 as i64) as u64),
        Rem => out.result = Some(rem_total(rs1 as i64, rs2 as i64) as u64),
        Ld | Lw | Lb | Lfd => out.ea = Some(rs1.wrapping_add(imm64)),
        Sd | Sw | Sb | Sfd => {
            out.ea = Some(rs1.wrapping_add(imm64));
            out.store_value = Some(rs2);
        }
        Beq => {
            let taken = rs1 == rs2;
            out.taken = Some(taken);
            out.target = taken.then(|| rel_target(pc, inst.imm));
        }
        Bne => {
            let taken = rs1 != rs2;
            out.taken = Some(taken);
            out.target = taken.then(|| rel_target(pc, inst.imm));
        }
        Blt => {
            let taken = (rs1 as i64) < (rs2 as i64);
            out.taken = Some(taken);
            out.target = taken.then(|| rel_target(pc, inst.imm));
        }
        Bge => {
            let taken = (rs1 as i64) >= (rs2 as i64);
            out.taken = Some(taken);
            out.target = taken.then(|| rel_target(pc, inst.imm));
        }
        J => {
            out.taken = Some(true);
            out.target = Some(rel_target(pc, inst.imm));
        }
        Jal => {
            out.taken = Some(true);
            out.target = Some(rel_target(pc, inst.imm));
            out.result = Some(pc.wrapping_add(INST_BYTES as u64));
        }
        Jr => {
            out.taken = Some(true);
            out.target = Some(rs1);
        }
        Jalr => {
            out.taken = Some(true);
            out.target = Some(rs1);
            out.result = Some(pc.wrapping_add(INST_BYTES as u64));
        }
        Fadd => out.result = Some(b(f(rs1) + f(rs2))),
        Fsub => out.result = Some(b(f(rs1) - f(rs2))),
        Fmul => out.result = Some(b(f(rs1) * f(rs2))),
        Fdiv => out.result = Some(b(f(rs1) / f(rs2))),
        Fsqrt => out.result = Some(b(f(rs1).sqrt())),
        Fneg => out.result = Some(rs1 ^ (1u64 << 63)),
        Fabs => out.result = Some(rs1 & !(1u64 << 63)),
        Fmin => out.result = Some(b(f(rs1).min(f(rs2)))),
        Fmax => out.result = Some(b(f(rs1).max(f(rs2)))),
        Feq => out.result = Some(u64::from(f(rs1) == f(rs2))),
        Flt => out.result = Some(u64::from(f(rs1) < f(rs2))),
        Fle => out.result = Some(u64::from(f(rs1) <= f(rs2))),
        Cvtif => out.result = Some(b(rs1 as i64 as f64)),
        Cvtfi => out.result = Some(cvt_f_to_i(f(rs1)) as u64),
        Fmov => out.result = Some(rs1),
        Nop => {}
        Halt => out.halt = true,
    }
    out
}

/// Extends a raw little-endian memory word to the architectural 64-bit
/// register value for a given load opcode (`lw`/`lb` sign-extend).
///
/// # Panics
///
/// Panics if `op` is not a load.
pub fn load_extend(op: Opcode, raw: u64) -> u64 {
    match op {
        Opcode::Ld | Opcode::Lfd => raw,
        Opcode::Lw => raw as u32 as i32 as i64 as u64,
        Opcode::Lb => raw as u8 as i8 as i64 as u64,
        _ => panic!("{op} is not a load"),
    }
}

/// The architectural next PC implied by an execution outcome.
pub fn next_pc(pc: u64, outcome: &ExecOutcome) -> u64 {
    match (outcome.taken, outcome.target) {
        (Some(true), Some(t)) => t,
        _ => pc.wrapping_add(INST_BYTES as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(op: Opcode, rs1: u64, rs2: u64) -> u64 {
        execute(&Inst::new(op, 1, 2, 3, 0), 0, rs1, rs2)
            .result
            .expect("result")
    }

    fn run_imm(op: Opcode, rs1: u64, imm: i32) -> u64 {
        execute(&Inst::new(op, 1, 2, 0, imm), 0, rs1, 0)
            .result
            .expect("result")
    }

    #[test]
    fn integer_alu() {
        assert_eq!(run(Opcode::Add, 5, 7), 12);
        assert_eq!(run(Opcode::Add, u64::MAX, 1), 0); // wraps
        assert_eq!(run(Opcode::Sub, 5, 7), (-2i64) as u64);
        assert_eq!(run(Opcode::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(run(Opcode::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(run(Opcode::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(run(Opcode::Nor, 0, 0), u64::MAX);
        assert_eq!(run(Opcode::Sll, 1, 8), 256);
        assert_eq!(run(Opcode::Sll, 1, 64), 1); // shift amount masked
        assert_eq!(run(Opcode::Srl, u64::MAX, 63), 1);
        assert_eq!(run(Opcode::Sra, (-16i64) as u64, 2), (-4i64) as u64);
        assert_eq!(run(Opcode::Slt, (-1i64) as u64, 0), 1);
        assert_eq!(run(Opcode::Sltu, (-1i64) as u64, 0), 0);
    }

    #[test]
    fn immediates() {
        assert_eq!(run_imm(Opcode::Addi, 10, -3), 7);
        assert_eq!(run_imm(Opcode::Andi, 0xff, 0x0f), 0x0f);
        assert_eq!(run_imm(Opcode::Ori, 0xf0, 0x0f), 0xff);
        assert_eq!(run_imm(Opcode::Xori, 0xff, 0x0f), 0xf0);
        assert_eq!(run_imm(Opcode::Slti, 1, 2), 1);
        assert_eq!(run_imm(Opcode::Slli, 3, 4), 48);
        assert_eq!(run_imm(Opcode::Srli, 48, 4), 3);
        assert_eq!(run_imm(Opcode::Srai, (-48i64) as u64, 4), (-3i64) as u64);
        // Lui ignores rs1.
        let lui = execute(&Inst::new(Opcode::Lui, 1, 0, 0, 0x1234), 0, 999, 0);
        assert_eq!(lui.result, Some(0x1234 << 16));
        // Negative immediate sign-extends through the shift.
        let lui_neg = execute(&Inst::new(Opcode::Lui, 1, 0, 0, -1), 0, 0, 0);
        assert_eq!(lui_neg.result, Some((-1i64 << 16) as u64));
    }

    #[test]
    fn division_is_total() {
        assert_eq!(run(Opcode::Div, 42, 0), u64::MAX); // -1
        assert_eq!(run(Opcode::Rem, 42, 0), 42);
        assert_eq!(
            run(Opcode::Div, i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64 // wraps
        );
        assert_eq!(run(Opcode::Rem, i64::MIN as u64, (-1i64) as u64), 0);
        assert_eq!(run(Opcode::Div, (-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(run(Opcode::Rem, (-7i64) as u64, 2), (-1i64) as u64);
        assert_eq!(run(Opcode::Mul, u64::MAX, 2), u64::MAX - 1); // wraps
    }

    #[test]
    fn memory_addressing() {
        let ld = execute(&Inst::new(Opcode::Ld, 1, 2, 0, -8), 0, 0x1010, 0);
        assert_eq!(ld.ea, Some(0x1008));
        assert_eq!(ld.result, None);
        let sd = execute(&Inst::new(Opcode::Sd, 0, 2, 3, 16), 0, 0x1000, 77);
        assert_eq!(sd.ea, Some(0x1010));
        assert_eq!(sd.store_value, Some(77));
    }

    #[test]
    fn load_extension() {
        assert_eq!(load_extend(Opcode::Ld, 0xffff_ffff_ffff_ffff), u64::MAX);
        assert_eq!(load_extend(Opcode::Lw, 0xffff_ffff), u64::MAX); // sign-extend
        assert_eq!(load_extend(Opcode::Lw, 0x7fff_ffff), 0x7fff_ffff);
        assert_eq!(load_extend(Opcode::Lb, 0x80), (-128i64) as u64);
        assert_eq!(load_extend(Opcode::Lfd, 12345), 12345);
    }

    #[test]
    #[should_panic(expected = "not a load")]
    fn load_extend_rejects_non_loads() {
        let _ = load_extend(Opcode::Add, 0);
    }

    #[test]
    fn branches() {
        let beq = Inst::new(Opcode::Beq, 0, 1, 2, 4);
        let t = execute(&beq, 0x1000, 5, 5);
        assert_eq!(t.taken, Some(true));
        assert_eq!(t.target, Some(0x1000 + 4 + 16));
        let nt = execute(&beq, 0x1000, 5, 6);
        assert_eq!(nt.taken, Some(false));
        assert_eq!(nt.target, None);
        assert_eq!(next_pc(0x1000, &nt), 0x1004);
        assert_eq!(next_pc(0x1000, &t), 0x1014);

        let blt = execute(
            &Inst::new(Opcode::Blt, 0, 1, 2, -2),
            0x100,
            (-5i64) as u64,
            0,
        );
        assert_eq!(blt.taken, Some(true));
        assert_eq!(blt.target, Some(0x100 + 4 - 8));

        let bge = execute(&Inst::new(Opcode::Bge, 0, 1, 2, 1), 0, 3, 3);
        assert_eq!(bge.taken, Some(true));
    }

    #[test]
    fn jumps_and_links() {
        let jal = execute(&Inst::new(Opcode::Jal, 31, 0, 0, 10), 0x2000, 0, 0);
        assert_eq!(jal.result, Some(0x2004)); // link
        assert_eq!(jal.target, Some(0x2004 + 40));
        let jr = execute(&Inst::new(Opcode::Jr, 0, 5, 0, 0), 0x2000, 0x3000, 0);
        assert_eq!(jr.target, Some(0x3000));
        assert_eq!(jr.result, None);
        let jalr = execute(&Inst::new(Opcode::Jalr, 1, 5, 0, 0), 0x2000, 0x3000, 0);
        assert_eq!(jalr.result, Some(0x2004));
        assert_eq!(jalr.target, Some(0x3000));
    }

    #[test]
    fn fp_arithmetic() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(run(Opcode::Fadd, two, three)), 5.0);
        assert_eq!(f64::from_bits(run(Opcode::Fsub, two, three)), -1.0);
        assert_eq!(f64::from_bits(run(Opcode::Fmul, two, three)), 6.0);
        assert_eq!(f64::from_bits(run(Opcode::Fdiv, three, two)), 1.5);
        assert_eq!(f64::from_bits(run(Opcode::Fsqrt, 4.0f64.to_bits(), 0)), 2.0);
        assert!(f64::from_bits(run(Opcode::Fdiv, two, 0.0f64.to_bits())).is_infinite());
        assert!(f64::from_bits(run(Opcode::Fsqrt, (-1.0f64).to_bits(), 0)).is_nan());
    }

    #[test]
    fn fp_sign_ops_are_bit_exact() {
        let v = 1.5f64.to_bits();
        assert_eq!(f64::from_bits(run(Opcode::Fneg, v, 0)), -1.5);
        assert_eq!(
            f64::from_bits(run(Opcode::Fabs, (-1.5f64).to_bits(), 0)),
            1.5
        );
        // Fneg of NaN flips only the sign bit (deterministic).
        let nan = f64::NAN.to_bits();
        assert_eq!(run(Opcode::Fneg, nan, 0), nan ^ (1 << 63));
    }

    #[test]
    fn fp_compares_and_minmax() {
        let one = 1.0f64.to_bits();
        let two = 2.0f64.to_bits();
        let nan = f64::NAN.to_bits();
        assert_eq!(run(Opcode::Feq, one, one), 1);
        assert_eq!(run(Opcode::Flt, one, two), 1);
        assert_eq!(run(Opcode::Fle, two, two), 1);
        assert_eq!(run(Opcode::Feq, nan, nan), 0); // NaN compares false
        assert_eq!(run(Opcode::Flt, nan, one), 0);
        assert_eq!(f64::from_bits(run(Opcode::Fmin, one, two)), 1.0);
        assert_eq!(f64::from_bits(run(Opcode::Fmax, one, two)), 2.0);
    }

    #[test]
    fn conversions() {
        let c = run(Opcode::Cvtif, (-3i64) as u64, 0);
        assert_eq!(f64::from_bits(c), -3.0);
        assert_eq!(run(Opcode::Cvtfi, (-3.7f64).to_bits(), 0), (-3i64) as u64);
        assert_eq!(run(Opcode::Cvtfi, f64::NAN.to_bits(), 0), 0); // NaN -> 0
        assert_eq!(
            run(Opcode::Cvtfi, f64::INFINITY.to_bits(), 0),
            i64::MAX as u64 // saturates
        );
        assert_eq!(run(Opcode::Fmov, 0xdead, 0), 0xdead);
    }

    #[test]
    fn nop_and_halt() {
        let n = execute(&Inst::nop(), 0, 0, 0);
        assert_eq!(n, ExecOutcome::default());
        let h = execute(&Inst::halt(), 0, 0, 0);
        assert!(h.halt);
        assert_eq!(next_pc(0, &h), 4);
    }
}
