//! The decoded instruction form used throughout the simulator.

use crate::op::Opcode;
use crate::reg::{RegClass, RegRef};
use std::fmt;

/// A decoded instruction: opcode plus raw operand fields.
///
/// The register fields are interpreted (integer file, FP file, or unused)
/// according to the opcode's static classes — see [`Inst::rd`],
/// [`Inst::rs1`], [`Inst::rs2`]. The immediate is a sign-extended 32-bit
/// value whose meaning depends on the opcode (ALU constant, memory offset in
/// bytes, or branch displacement in *instructions*).
///
/// # Examples
///
/// ```
/// use ftsim_isa::{Inst, Opcode, RegRef};
///
/// let add = Inst::new(Opcode::Add, 3, 1, 2, 0);
/// assert_eq!(add.rd(), Some(RegRef::int(3)));
/// assert_eq!(add.to_string(), "add r3, r1, r2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register field (class per opcode; may be unused).
    pub rd: u8,
    /// First source register field.
    pub rs1: u8,
    /// Second source register field.
    pub rs2: u8,
    /// Immediate operand.
    pub imm: i32,
}

impl Inst {
    /// Creates an instruction from raw fields.
    ///
    /// # Panics
    ///
    /// Panics if a register field used by this opcode is ≥ 32.
    pub fn new(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: i32) -> Self {
        let inst = Self {
            op,
            rd,
            rs1,
            rs2,
            imm,
        };
        // Validate only the fields the opcode actually uses.
        let _ = inst.rd();
        let _ = inst.rs1();
        let _ = inst.rs2();
        inst
    }

    /// A `nop`.
    pub fn nop() -> Self {
        Self::new(Opcode::Nop, 0, 0, 0, 0)
    }

    /// A `halt`.
    pub fn halt() -> Self {
        Self::new(Opcode::Halt, 0, 0, 0, 0)
    }

    /// The destination register, classified, if this opcode writes one.
    pub fn rd(&self) -> Option<RegRef> {
        self.op.rd_class().map(|c| Self::make_ref(c, self.rd))
    }

    /// The first source register, classified, if read.
    pub fn rs1(&self) -> Option<RegRef> {
        self.op.rs1_class().map(|c| Self::make_ref(c, self.rs1))
    }

    /// The second source register, classified, if read.
    pub fn rs2(&self) -> Option<RegRef> {
        self.op.rs2_class().map(|c| Self::make_ref(c, self.rs2))
    }

    fn make_ref(class: RegClass, index: u8) -> RegRef {
        match class {
            RegClass::Int => RegRef::int(index),
            RegClass::Fp => RegRef::fp(index),
        }
    }

    /// Destination that is architecturally visible (i.e. not `r0`).
    pub fn effective_rd(&self) -> Option<RegRef> {
        self.rd().filter(|r| !r.is_zero_reg())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        let rd = self.rd();
        let rs1 = self.rs1();
        let rs2 = self.rs2();
        let imm = self.imm;
        use Opcode::*;
        match self.op {
            Nop | Halt => write!(f, "{m}"),
            J | Jal => write!(f, "{m} {imm}"),
            Jr => write!(f, "{m} {}", rs1.unwrap()),
            Jalr => write!(f, "{m} {}, {}", rd.unwrap(), rs1.unwrap()),
            Lui => write!(f, "{m} {}, {imm}", rd.unwrap()),
            Beq | Bne | Blt | Bge => {
                write!(f, "{m} {}, {}, {imm}", rs1.unwrap(), rs2.unwrap())
            }
            Ld | Lw | Lb | Lfd => {
                write!(f, "{m} {}, {imm}({})", rd.unwrap(), rs1.unwrap())
            }
            Sd | Sw | Sb | Sfd => {
                write!(f, "{m} {}, {imm}({})", rs2.unwrap(), rs1.unwrap())
            }
            _ if self.op.uses_imm() => {
                write!(f, "{m} {}, {}, {imm}", rd.unwrap(), rs1.unwrap())
            }
            _ => match (rd, rs1, rs2) {
                (Some(d), Some(a), Some(b)) => write!(f, "{m} {d}, {a}, {b}"),
                (Some(d), Some(a), None) => write!(f, "{m} {d}, {a}"),
                _ => write!(f, "{m}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_classification() {
        let i = Inst::new(Opcode::Fadd, 1, 2, 3, 0);
        assert_eq!(i.rd(), Some(RegRef::fp(1)));
        assert_eq!(i.rs1(), Some(RegRef::fp(2)));
        assert_eq!(i.rs2(), Some(RegRef::fp(3)));

        let s = Inst::new(Opcode::Sd, 0, 4, 5, 16);
        assert_eq!(s.rd(), None);
        assert_eq!(s.rs1(), Some(RegRef::int(4)));
        assert_eq!(s.rs2(), Some(RegRef::int(5)));
    }

    #[test]
    fn effective_rd_filters_zero() {
        let i = Inst::new(Opcode::Add, 0, 1, 2, 0);
        assert!(i.rd().is_some());
        assert!(i.effective_rd().is_none());
        let j = Inst::new(Opcode::Add, 9, 1, 2, 0);
        assert_eq!(j.effective_rd(), Some(RegRef::int(9)));
    }

    #[test]
    fn unused_fields_not_validated() {
        // rs2 field is garbage but Sll ignores... no, Sll uses rs2. Use Addi:
        // rd/rs1 used, rs2 unused — an out-of-range rs2 field must not panic.
        let i = Inst {
            op: Opcode::Addi,
            rd: 1,
            rs1: 2,
            rs2: 200,
            imm: 5,
        };
        assert_eq!(i.rs2(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn used_field_validated() {
        let _ = Inst::new(Opcode::Add, 40, 1, 2, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Inst::new(Opcode::Addi, 1, 0, 0, -5).to_string(),
            "addi r1, r0, -5"
        );
        assert_eq!(
            Inst::new(Opcode::Ld, 2, 3, 0, 8).to_string(),
            "ld r2, 8(r3)"
        );
        assert_eq!(
            Inst::new(Opcode::Sfd, 0, 3, 7, 8).to_string(),
            "sfd f7, 8(r3)"
        );
        assert_eq!(
            Inst::new(Opcode::Beq, 0, 1, 2, -3).to_string(),
            "beq r1, r2, -3"
        );
        assert_eq!(Inst::new(Opcode::Jal, 31, 0, 0, 10).to_string(), "jal 10");
        assert_eq!(Inst::nop().to_string(), "nop");
        assert_eq!(Inst::halt().to_string(), "halt");
        assert_eq!(
            Inst::new(Opcode::Fsqrt, 1, 2, 0, 0).to_string(),
            "fsqrt f1, f2"
        );
    }
}
