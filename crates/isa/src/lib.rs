//! A PISA-like 64-bit RISC instruction set for the `ftsim` fault-tolerant
//! superscalar simulator.
//!
//! The paper evaluates on SimpleScalar's PISA ISA (SPEC binaries compiled
//! with `gcc -O2 -funroll-loops`). PISA toolchains are not redistributable,
//! so this crate defines a compact MIPS/RISC-V-flavoured replacement with
//! the properties the experiments rely on:
//!
//! * 32 integer + 32 floating-point registers (`r0` hardwired to zero) —
//!   enough renaming pressure to exercise the map table;
//! * distinct functional-unit classes matching Table 1's mix (integer ALU,
//!   integer multiply/divide, FP add, FP multiply/divide, memory);
//! * **total semantics**: no instruction traps, so wrong-path (speculative)
//!   execution of arbitrary operands is always well-defined — division by
//!   zero, overflow and NaN all produce deterministic values (RISC-V rules);
//! * a binary encoding with an exact decode/encode round-trip, used by
//!   property tests;
//! * a label-resolving [`ProgramBuilder`] and a small text [`asm`]
//!   assembler for writing kernels;
//! * an in-order reference [`Emulator`] — the architectural oracle that the
//!   paper runs alongside the out-of-order simulator as a sanity check
//!   (§5.1.1: "the other set, concurrently maintained as a sanity check, is
//!   updated by executing the program in an in-order, non-speculative
//!   manner").
//!
//! # Examples
//!
//! Assemble and run a loop that sums 1..=10:
//!
//! ```
//! use ftsim_isa::{asm, Emulator, IntReg};
//!
//! let program = asm::assemble(r"
//!     addi r1, r0, 10      ; counter
//!     addi r2, r0, 0       ; sum
//! loop:
//!     add  r2, r2, r1
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! ").unwrap();
//! let mut emu = Emulator::new(&program);
//! emu.run(1_000).unwrap();
//! assert_eq!(emu.regs().read_int(IntReg::new(2)), 55);
//! ```

#![warn(missing_docs)]

pub mod asm;
mod emulator;
mod encode;
mod exec;
mod inst;
mod op;
mod program;
mod reg;

pub use emulator::{EmuError, Emulator, StepInfo};
pub use encode::{decode, encode, DecodeError};
pub use exec::{direct_target, execute, load_extend, next_pc, ExecOutcome};
pub use inst::Inst;
pub use op::{FuClass, MixClass, Opcode};
pub use program::{BuildError, Program, ProgramBuilder, DATA_BASE, INST_BYTES, TEXT_BASE};
pub use reg::{ArchRegs, FpReg, IntReg, RegClass, RegRef};
