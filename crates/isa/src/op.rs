//! Opcodes and their static properties (register classes, functional-unit
//! class, instruction-mix class).

use crate::reg::RegClass;

/// Functional-unit class an instruction executes on.
///
/// Mirrors the paper's Table 1 mix: 4 integer ALUs, 2 integer
/// multiplier/dividers, 2 FP adders, 1 FP multiplier/divider; memory
/// operations contend for L1D ports instead of an ALU. Conditional branches
/// and jumps resolve on integer ALUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU (1-cycle, pipelined). Also resolves control flow.
    IntAlu,
    /// Integer multiplier (pipelined) / divider (blocking) unit.
    IntMul,
    /// FP adder (pipelined); also conversions, compares, moves.
    FpAdd,
    /// FP multiplier (pipelined) / divider & sqrt (blocking) unit.
    FpMul,
    /// Memory port (L1D); address generation is folded into the access.
    Mem,
}

/// Dynamic instruction-mix class used to reproduce the paper's Table 2
/// (`% Mem Ops`, `% Int Ops`, `% FP Add`, `% FP Mult`, `% FP Div`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixClass {
    /// Loads and stores (integer and FP).
    Mem,
    /// Everything integer, including branches, jumps, `nop` and `halt`.
    Int,
    /// FP add-class operations (add/sub/compare/convert/move/min/max).
    FpAdd,
    /// FP multiplies.
    FpMul,
    /// FP divides and square roots.
    FpDiv,
}

macro_rules! opcodes {
    ($($name:ident => $mnemonic:literal),+ $(,)?) => {
        /// Instruction opcode.
        ///
        /// Semantics are *total*: every opcode produces a defined result for
        /// every input (RISC-V division rules, saturating conversion,
        /// IEEE-754 arithmetic), so speculative wrong-path execution can
        /// never trap.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(#[doc = $mnemonic] $name),+
        }

        impl Opcode {
            /// Every opcode, in encoding order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$name),+];

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$name => $mnemonic),+
                }
            }

            /// Parses a mnemonic (lower-case).
            pub fn from_mnemonic(s: &str) -> Option<Self> {
                match s {
                    $($mnemonic => Some(Opcode::$name),)+
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    // Integer ALU, register-register.
    Add => "add", Sub => "sub", And => "and", Or => "or", Xor => "xor",
    Nor => "nor", Sll => "sll", Srl => "srl", Sra => "sra",
    Slt => "slt", Sltu => "sltu",
    // Integer ALU, immediate.
    Addi => "addi", Andi => "andi", Ori => "ori", Xori => "xori",
    Slti => "slti", Slli => "slli", Srli => "srli", Srai => "srai",
    Lui => "lui",
    // Integer multiply / divide.
    Mul => "mul", Div => "div", Rem => "rem",
    // Memory.
    Ld => "ld", Lw => "lw", Lb => "lb",
    Sd => "sd", Sw => "sw", Sb => "sb",
    Lfd => "lfd", Sfd => "sfd",
    // Control.
    Beq => "beq", Bne => "bne", Blt => "blt", Bge => "bge",
    J => "j", Jal => "jal", Jr => "jr", Jalr => "jalr",
    // Floating point.
    Fadd => "fadd", Fsub => "fsub", Fmul => "fmul", Fdiv => "fdiv",
    Fsqrt => "fsqrt", Fneg => "fneg", Fabs => "fabs",
    Fmin => "fmin", Fmax => "fmax",
    Feq => "feq", Flt => "flt", Fle => "fle",
    Cvtif => "cvtif", Cvtfi => "cvtfi", Fmov => "fmov",
    // Miscellaneous.
    Nop => "nop", Halt => "halt",
}

impl Opcode {
    /// Register class written by `rd`, if any.
    pub fn rd_class(self) -> Option<RegClass> {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slti | Slli | Srli | Srai | Lui | Mul | Div | Rem | Ld | Lw | Lb | Jal
            | Jalr | Feq | Flt | Fle | Cvtfi => Some(RegClass::Int),
            Lfd | Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Fabs | Fmin | Fmax | Cvtif | Fmov => {
                Some(RegClass::Fp)
            }
            Sd | Sw | Sb | Sfd | Beq | Bne | Blt | Bge | J | Jr | Nop | Halt => None,
        }
    }

    /// Register class read by `rs1`, if any.
    pub fn rs1_class(self) -> Option<RegClass> {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slti | Slli | Srli | Srai | Mul | Div | Rem | Ld | Lw | Lb | Sd | Sw | Sb
            | Lfd | Sfd | Beq | Bne | Blt | Bge | Jr | Jalr | Cvtif => Some(RegClass::Int),
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Fabs | Fmin | Fmax | Feq | Flt | Fle
            | Cvtfi | Fmov => Some(RegClass::Fp),
            Lui | J | Jal | Nop | Halt => None,
        }
    }

    /// Register class read by `rs2`, if any.
    pub fn rs2_class(self) -> Option<RegClass> {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Mul | Div | Rem
            | Sd | Sw | Sb | Beq | Bne | Blt | Bge => Some(RegClass::Int),
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Feq | Flt | Fle | Sfd => Some(RegClass::Fp),
            Addi | Andi | Ori | Xori | Slti | Slli | Srli | Srai | Lui | Ld | Lw | Lb | Lfd | J
            | Jal | Jr | Jalr | Fsqrt | Fneg | Fabs | Cvtif | Cvtfi | Fmov | Nop | Halt => None,
        }
    }

    /// Functional-unit class (Table 1 accounting).
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Mul | Div | Rem => FuClass::IntMul,
            Ld | Lw | Lb | Sd | Sw | Sb | Lfd | Sfd => FuClass::Mem,
            Fadd | Fsub | Fneg | Fabs | Fmin | Fmax | Feq | Flt | Fle | Cvtif | Cvtfi | Fmov => {
                FuClass::FpAdd
            }
            Fmul | Fdiv | Fsqrt => FuClass::FpMul,
            _ => FuClass::IntAlu,
        }
    }

    /// Instruction-mix class (Table 2 accounting).
    pub fn mix_class(self) -> MixClass {
        use Opcode::*;
        match self {
            Ld | Lw | Lb | Sd | Sw | Sb | Lfd | Sfd => MixClass::Mem,
            Fadd | Fsub | Fneg | Fabs | Fmin | Fmax | Feq | Flt | Fle | Cvtif | Cvtfi | Fmov => {
                MixClass::FpAdd
            }
            Fmul => MixClass::FpMul,
            Fdiv | Fsqrt => MixClass::FpDiv,
            _ => MixClass::Int,
        }
    }

    /// Conditional branch?
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// Unconditional jump (direct or indirect)?
    pub fn is_jump(self) -> bool {
        matches!(self, Opcode::J | Opcode::Jal | Opcode::Jr | Opcode::Jalr)
    }

    /// Indirect (register-target) jump?
    pub fn is_indirect_jump(self) -> bool {
        matches!(self, Opcode::Jr | Opcode::Jalr)
    }

    /// Call (writes a return address)?
    pub fn is_call(self) -> bool {
        matches!(self, Opcode::Jal | Opcode::Jalr)
    }

    /// Any control-transfer instruction?
    pub fn is_control(self) -> bool {
        self.is_cond_branch() || self.is_jump()
    }

    /// Memory load?
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::Lw | Opcode::Lb | Opcode::Lfd)
    }

    /// Memory store?
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Sd | Opcode::Sw | Opcode::Sb | Opcode::Sfd)
    }

    /// Any memory operation?
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Access width in bytes for memory operations, otherwise 0.
    pub fn mem_bytes(self) -> u8 {
        use Opcode::*;
        match self {
            Ld | Sd | Lfd | Sfd => 8,
            Lw | Sw => 4,
            Lb | Sb => 1,
            _ => 0,
        }
    }

    /// Uses the immediate field?
    pub fn uses_imm(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Addi | Andi
                | Ori
                | Xori
                | Slti
                | Slli
                | Srli
                | Srai
                | Lui
                | Ld
                | Lw
                | Lb
                | Sd
                | Sw
                | Sb
                | Lfd
                | Sfd
                | Beq
                | Bne
                | Blt
                | Bge
                | J
                | Jal
        )
    }

    /// Blocking (non-pipelined) on its functional unit? Matches Table 1:
    /// "all FU operations are pipelined except for division".
    pub fn is_blocking(self) -> bool {
        matches!(
            self,
            Opcode::Div | Opcode::Rem | Opcode::Fdiv | Opcode::Fsqrt
        )
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn all_opcodes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate {op}");
        }
    }

    #[test]
    fn classification_consistency() {
        for &op in Opcode::ALL {
            // Memory ops agree across predicates.
            assert_eq!(op.is_mem(), op.mix_class() == MixClass::Mem);
            assert_eq!(op.is_mem(), op.fu_class() == FuClass::Mem);
            assert_eq!(op.is_mem(), op.mem_bytes() > 0);
            // Loads write a register; stores do not.
            if op.is_load() {
                assert!(op.rd_class().is_some(), "{op} must write rd");
            }
            if op.is_store() {
                assert!(op.rd_class().is_none(), "{op} must not write rd");
                assert!(op.rs2_class().is_some(), "{op} needs a data register");
            }
            // Control instructions never write FP registers.
            if op.is_control() {
                assert_ne!(op.rd_class(), Some(RegClass::Fp));
            }
        }
    }

    #[test]
    fn branch_and_jump_predicates() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(!Opcode::J.is_cond_branch());
        assert!(Opcode::J.is_jump());
        assert!(Opcode::Jr.is_indirect_jump());
        assert!(Opcode::Jal.is_call());
        assert!(Opcode::Jalr.is_call());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn fu_classes_match_table1_semantics() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::IntMul);
        assert_eq!(Opcode::Div.fu_class(), FuClass::IntMul);
        assert_eq!(Opcode::Fadd.fu_class(), FuClass::FpAdd);
        assert_eq!(Opcode::Fmul.fu_class(), FuClass::FpMul);
        assert_eq!(Opcode::Fdiv.fu_class(), FuClass::FpMul);
        assert_eq!(Opcode::Ld.fu_class(), FuClass::Mem);
        assert_eq!(Opcode::Beq.fu_class(), FuClass::IntAlu);
    }

    #[test]
    fn only_divisions_block() {
        for &op in Opcode::ALL {
            if op.is_blocking() {
                assert!(matches!(
                    op,
                    Opcode::Div | Opcode::Rem | Opcode::Fdiv | Opcode::Fsqrt
                ));
            }
        }
    }

    #[test]
    fn mem_widths() {
        assert_eq!(Opcode::Ld.mem_bytes(), 8);
        assert_eq!(Opcode::Lw.mem_bytes(), 4);
        assert_eq!(Opcode::Sb.mem_bytes(), 1);
        assert_eq!(Opcode::Sfd.mem_bytes(), 8);
        assert_eq!(Opcode::Add.mem_bytes(), 0);
    }
}
