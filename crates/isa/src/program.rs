//! Programs, memory layout, and the label-resolving builder.

use crate::inst::Inst;
use crate::op::Opcode;
use crate::reg::{FpReg, IntReg};
use ftsim_mem::SparseMemory;
use std::collections::HashMap;
use std::fmt;

/// Base address of the text (instruction) segment.
pub const TEXT_BASE: u64 = 0x1000;
/// Base address of the data segment used by workload generators.
pub const DATA_BASE: u64 = 0x0010_0000;
/// Architectural instruction size in bytes (PC stride).
pub const INST_BYTES: usize = 4;

/// A complete program: instruction image plus initial data image.
///
/// Instructions live at [`TEXT_BASE`] with a fixed [`INST_BYTES`] stride.
/// Fetches outside the text segment return `None`, which the pipeline
/// treats as a front-end stall — a benign outcome for wrong-path fetches.
///
/// # Examples
///
/// ```
/// use ftsim_isa::{Program, ProgramBuilder, IntReg, TEXT_BASE};
///
/// let mut b = ProgramBuilder::new();
/// b.addi(IntReg::new(1), IntReg::ZERO, 42);
/// b.halt();
/// let p: Program = b.build().unwrap();
/// assert_eq!(p.len(), 2);
/// assert!(p.inst_at(TEXT_BASE).is_some());
/// assert!(p.inst_at(TEXT_BASE - 4).is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    data: Vec<(u64, Vec<u8>)>,
}

impl Program {
    /// Builds a program directly from instructions (no labels, no data).
    pub fn from_insts<I: IntoIterator<Item = Inst>>(insts: I) -> Self {
        Self {
            insts: insts.into_iter().collect(),
            data: Vec::new(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry PC (start of text).
    pub fn entry(&self) -> u64 {
        TEXT_BASE
    }

    /// One past the last valid instruction address.
    pub fn text_end(&self) -> u64 {
        TEXT_BASE + (self.insts.len() * INST_BYTES) as u64
    }

    /// The instruction at `pc`, if `pc` lies in the text segment and is
    /// instruction-aligned.
    pub fn inst_at(&self, pc: u64) -> Option<&Inst> {
        if pc < TEXT_BASE || (pc - TEXT_BASE) % INST_BYTES as u64 != 0 {
            return None;
        }
        self.insts
            .get(((pc - TEXT_BASE) / INST_BYTES as u64) as usize)
    }

    /// The PC of the instruction at static index `index`.
    pub fn pc_of(&self, index: usize) -> u64 {
        TEXT_BASE + (index * INST_BYTES) as u64
    }

    /// All instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Writes the initial data image into `mem`.
    pub fn load_data(&self, mem: &mut SparseMemory) {
        for (addr, bytes) in &self.data {
            for (i, &b) in bytes.iter().enumerate() {
                mem.write_u8(addr + i as u64, b);
            }
        }
    }

    /// The raw initial data image as `(address, bytes)` chunks.
    pub fn data(&self) -> &[(u64, Vec<u8>)] {
        &self.data
    }
}

/// Error from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A control transfer referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A resolved displacement does not fit the 32-bit immediate.
    OffsetOverflow {
        /// The label whose displacement overflowed.
        label: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::OffsetOverflow { label } => {
                write!(f, "branch displacement to `{label}` overflows")
            }
        }
    }
}

impl std::error::Error for BuildError {}

macro_rules! int_rrr {
    ($($fn_name:ident => $op:ident),+ $(,)?) => {
        $(
        #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1, rs2`.")]
        pub fn $fn_name(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
            self.inst(Inst::new(Opcode::$op, rd.index(), rs1.index(), rs2.index(), 0))
        }
        )+
    };
}

macro_rules! int_rri {
    ($($fn_name:ident => $op:ident),+ $(,)?) => {
        $(
        #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1, imm`.")]
        pub fn $fn_name(&mut self, rd: IntReg, rs1: IntReg, imm: i32) -> &mut Self {
            self.inst(Inst::new(Opcode::$op, rd.index(), rs1.index(), 0, imm))
        }
        )+
    };
}

macro_rules! fp_rrr {
    ($($fn_name:ident => $op:ident),+ $(,)?) => {
        $(
        #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1, rs2` (FP).")]
        pub fn $fn_name(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) -> &mut Self {
            self.inst(Inst::new(Opcode::$op, rd.index(), rs1.index(), rs2.index(), 0))
        }
        )+
    };
}

macro_rules! fp_rr {
    ($($fn_name:ident => $op:ident),+ $(,)?) => {
        $(
        #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1` (FP unary).")]
        pub fn $fn_name(&mut self, rd: FpReg, rs1: FpReg) -> &mut Self {
            self.inst(Inst::new(Opcode::$op, rd.index(), rs1.index(), 0, 0))
        }
        )+
    };
}

macro_rules! branches {
    ($($fn_name:ident => $op:ident),+ $(,)?) => {
        $(
        #[doc = concat!("Emits `", stringify!($fn_name), " rs1, rs2, label`.")]
        pub fn $fn_name(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
            let idx = self.insts.len();
            self.fixups.push((idx, label.to_string()));
            self.inst(Inst::new(Opcode::$op, 0, rs1.index(), rs2.index(), 0))
        }
        )+
    };
}

/// Incrementally builds a [`Program`] with named labels.
///
/// Branch and jump methods take label names; displacements are resolved at
/// [`ProgramBuilder::build`] time. Methods return `&mut Self` for chaining.
///
/// # Examples
///
/// ```
/// use ftsim_isa::{IntReg, ProgramBuilder};
///
/// let r1 = IntReg::new(1);
/// let mut b = ProgramBuilder::new();
/// b.addi(r1, IntReg::ZERO, 3);
/// b.label("spin");
/// b.addi(r1, r1, -1);
/// b.bne(r1, IntReg::ZERO, "spin");
/// b.halt();
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    data: Vec<(u64, Vec<u8>)>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Appends a control-transfer instruction whose immediate will be
    /// patched to the displacement of `label` at build time.
    pub(crate) fn inst_branch_to(&mut self, inst: Inst, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.fixups.push((idx, label.to_string()));
        self.inst(inst)
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.insts.len())
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    int_rrr! {
        add => Add, sub => Sub, and => And, or => Or, xor => Xor, nor => Nor,
        sll => Sll, srl => Srl, sra => Sra, slt => Slt, sltu => Sltu,
        mul => Mul, div => Div, rem => Rem,
    }

    int_rri! {
        addi => Addi, andi => Andi, ori => Ori, xori => Xori, slti => Slti,
        slli => Slli, srli => Srli, srai => Srai,
    }

    /// Emits `lui rd, imm` (`rd = imm << 16`).
    pub fn lui(&mut self, rd: IntReg, imm: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Lui, rd.index(), 0, 0, imm))
    }

    /// Loads an arbitrary 64-bit constant into `rd` using `lui`/`ori`/`slli`
    /// sequences (1–5 instructions).
    pub fn li(&mut self, rd: IntReg, value: i64) -> &mut Self {
        // Fast path for 32-bit-signed constants.
        if let Ok(v) = i32::try_from(value) {
            if (-32768..32768).contains(&v) {
                return self.addi(rd, IntReg::ZERO, v);
            }
            self.lui(rd, v >> 16);
            let low = v & 0xffff;
            if low != 0 {
                self.ori(rd, rd, low);
            }
            return self;
        }
        // General 64-bit: build the high 32 bits, shift, then or-in the rest.
        let hi = (value >> 32) as i32;
        let lo = value as u32;
        self.li(rd, hi as i64);
        self.slli(rd, rd, 32);
        if lo >> 16 != 0 {
            // ori takes a sign-extended imm; keep chunks to 16 bits.
            self.orhi16(rd, (lo >> 16) as i32);
        }
        if lo & 0xffff != 0 {
            self.ori(rd, rd, (lo & 0xffff) as i32);
        }
        self
    }

    /// `rd |= chunk << 16` using a scratch-free shift/or/shift trick is not
    /// possible without a scratch register, so we or into bits 16..32 via
    /// two shifts of `rd` itself.
    fn orhi16(&mut self, rd: IntReg, chunk: i32) -> &mut Self {
        // rd currently holds bits 32..64 shifted into place with zeros below.
        // Insert chunk at bits 16..32: shift right 32, or chunk, shift left 16,
        // would clobber low bits — instead rebuild: rd = rd | (chunk << 16)
        // via srli/ori/slli only works when low 32 bits are still zero,
        // which `li` guarantees at this point.
        self.srli(rd, rd, 16);
        self.ori(rd, rd, chunk & 0xffff);
        self.slli(rd, rd, 16);
        self
    }

    /// Emits `ld rd, offset(base)`.
    pub fn ld(&mut self, rd: IntReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Ld, rd.index(), base.index(), 0, offset))
    }

    /// Emits `lw rd, offset(base)` (32-bit sign-extending load).
    pub fn lw(&mut self, rd: IntReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Lw, rd.index(), base.index(), 0, offset))
    }

    /// Emits `lb rd, offset(base)` (8-bit sign-extending load).
    pub fn lb(&mut self, rd: IntReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Lb, rd.index(), base.index(), 0, offset))
    }

    /// Emits `sd src, offset(base)`.
    pub fn sd(&mut self, src: IntReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Sd, 0, base.index(), src.index(), offset))
    }

    /// Emits `sw src, offset(base)`.
    pub fn sw(&mut self, src: IntReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Sw, 0, base.index(), src.index(), offset))
    }

    /// Emits `sb src, offset(base)`.
    pub fn sb(&mut self, src: IntReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Sb, 0, base.index(), src.index(), offset))
    }

    /// Emits `lfd fd, offset(base)` (FP load).
    pub fn lfd(&mut self, fd: FpReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(Opcode::Lfd, fd.index(), base.index(), 0, offset))
    }

    /// Emits `sfd fsrc, offset(base)` (FP store).
    pub fn sfd(&mut self, fsrc: FpReg, base: IntReg, offset: i32) -> &mut Self {
        self.inst(Inst::new(
            Opcode::Sfd,
            0,
            base.index(),
            fsrc.index(),
            offset,
        ))
    }

    branches! { beq => Beq, bne => Bne, blt => Blt, bge => Bge }

    /// Emits `j label`.
    pub fn j(&mut self, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.fixups.push((idx, label.to_string()));
        self.inst(Inst::new(Opcode::J, 0, 0, 0, 0))
    }

    /// Emits `jal label` linking into `rd` (conventionally `r31`).
    pub fn jal(&mut self, rd: IntReg, label: &str) -> &mut Self {
        let idx = self.insts.len();
        self.fixups.push((idx, label.to_string()));
        self.inst(Inst::new(Opcode::Jal, rd.index(), 0, 0, 0))
    }

    /// Emits `jr rs` (indirect jump, e.g. return).
    pub fn jr(&mut self, rs: IntReg) -> &mut Self {
        self.inst(Inst::new(Opcode::Jr, 0, rs.index(), 0, 0))
    }

    /// Emits `jalr rd, rs`.
    pub fn jalr(&mut self, rd: IntReg, rs: IntReg) -> &mut Self {
        self.inst(Inst::new(Opcode::Jalr, rd.index(), rs.index(), 0, 0))
    }

    fp_rrr! {
        fadd => Fadd, fsub => Fsub, fmul => Fmul, fdiv => Fdiv,
        fmin => Fmin, fmax => Fmax,
    }

    fp_rr! { fsqrt => Fsqrt, fneg => Fneg, fabs => Fabs, fmov => Fmov }

    /// Emits `feq rd, fs1, fs2` (int result).
    pub fn feq(&mut self, rd: IntReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.inst(Inst::new(
            Opcode::Feq,
            rd.index(),
            fs1.index(),
            fs2.index(),
            0,
        ))
    }

    /// Emits `flt rd, fs1, fs2` (int result).
    pub fn flt(&mut self, rd: IntReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.inst(Inst::new(
            Opcode::Flt,
            rd.index(),
            fs1.index(),
            fs2.index(),
            0,
        ))
    }

    /// Emits `fle rd, fs1, fs2` (int result).
    pub fn fle(&mut self, rd: IntReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.inst(Inst::new(
            Opcode::Fle,
            rd.index(),
            fs1.index(),
            fs2.index(),
            0,
        ))
    }

    /// Emits `cvtif fd, rs` (integer to FP).
    pub fn cvtif(&mut self, fd: FpReg, rs: IntReg) -> &mut Self {
        self.inst(Inst::new(Opcode::Cvtif, fd.index(), rs.index(), 0, 0))
    }

    /// Emits `cvtfi rd, fs` (FP to integer, truncating).
    pub fn cvtfi(&mut self, rd: IntReg, fs: FpReg) -> &mut Self {
        self.inst(Inst::new(Opcode::Cvtfi, rd.index(), fs.index(), 0, 0))
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::nop())
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::halt())
    }

    /// Places raw bytes in the initial data image.
    pub fn data_bytes(&mut self, addr: u64, bytes: &[u8]) -> &mut Self {
        self.data.push((addr, bytes.to_vec()));
        self
    }

    /// Places little-endian 64-bit words in the initial data image.
    pub fn data_u64(&mut self, addr: u64, words: &[u64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data_bytes(addr, &bytes)
    }

    /// Places `f64` values in the initial data image.
    pub fn data_f64(&mut self, addr: u64, values: &[f64]) -> &mut Self {
        let words: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        self.data_u64(addr, &words)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for undefined or duplicate labels and for
    /// displacements that do not fit in the immediate field.
    pub fn build(mut self) -> Result<Program, BuildError> {
        if let Some(dup) = self.duplicate {
            return Err(BuildError::DuplicateLabel(dup));
        }
        for (idx, label) in &self.fixups {
            let &target = self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            let disp = target as i64 - (*idx as i64 + 1);
            let imm = i32::try_from(disp).map_err(|_| BuildError::OffsetOverflow {
                label: label.clone(),
            })?;
            self.insts[*idx].imm = imm;
        }
        Ok(Program {
            insts: self.insts,
            data: self.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, next_pc};

    const R1: IntReg = IntReg::ZERO;

    #[test]
    fn labels_resolve_backward_and_forward() {
        let r1 = IntReg::new(1);
        let mut b = ProgramBuilder::new();
        b.label("top");
        b.addi(r1, r1, 1); // idx 0
        b.beq(r1, R1, "end"); // idx 1 -> target 3, disp = 1
        b.j("top"); // idx 2 -> target 0, disp = -3
        b.label("end");
        b.halt(); // idx 3
        let p = b.build().unwrap();
        assert_eq!(p.insts()[1].imm, 1);
        assert_eq!(p.insts()[2].imm, -3);
        // Executing the j at its pc must land on "top".
        let pc2 = p.pc_of(2);
        let out = execute(&p.insts()[2], pc2, 0, 0);
        assert_eq!(next_pc(pc2, &out), p.pc_of(0));
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new();
        b.j("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.nop();
        b.label("x");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn inst_at_alignment_and_bounds() {
        let p = Program::from_insts([Inst::nop(), Inst::halt()]);
        assert!(p.inst_at(TEXT_BASE).is_some());
        assert!(p.inst_at(TEXT_BASE + 1).is_none()); // misaligned
        assert!(p.inst_at(TEXT_BASE + 8).is_none()); // past end
        assert_eq!(p.text_end(), TEXT_BASE + 8);
    }

    #[test]
    fn data_image_loads() {
        let mut b = ProgramBuilder::new();
        b.halt();
        b.data_u64(DATA_BASE, &[0xdead, 0xbeef]);
        b.data_f64(DATA_BASE + 64, &[1.5]);
        let p = b.build().unwrap();
        let mut mem = SparseMemory::new();
        p.load_data(&mut mem);
        assert_eq!(mem.read_u64(DATA_BASE), 0xdead);
        assert_eq!(mem.read_u64(DATA_BASE + 8), 0xbeef);
        assert_eq!(f64::from_bits(mem.read_u64(DATA_BASE + 64)), 1.5);
    }

    #[test]
    fn li_small_and_32bit() {
        use crate::emulator::Emulator;
        let r5 = IntReg::new(5);
        for v in [0i64, 7, -7, 32767, -32768, 65535, 0x1234_5678, -0x1234_5678] {
            let mut b = ProgramBuilder::new();
            b.li(r5, v);
            b.halt();
            let p = b.build().unwrap();
            let mut e = Emulator::new(&p);
            e.run(100).unwrap();
            assert_eq!(e.regs().read_int(r5) as i64, v, "li {v}");
        }
    }

    #[test]
    fn li_full_64bit() {
        use crate::emulator::Emulator;
        let r5 = IntReg::new(5);
        for v in [
            0x0123_4567_89ab_cdefu64 as i64,
            -1,
            i64::MIN,
            i64::MAX,
            0x8000_0000_0000_0001u64 as i64,
            0x0000_ffff_0000_ffffu64 as i64,
        ] {
            let mut b = ProgramBuilder::new();
            b.li(r5, v);
            b.halt();
            let p = b.build().unwrap();
            let mut e = Emulator::new(&p);
            e.run(100).unwrap();
            assert_eq!(
                e.regs().read_int(r5),
                v as u64,
                "li {v:#x} produced {:#x}",
                e.regs().read_int(r5)
            );
        }
    }
}
