//! Architectural registers: 32 integer + 32 floating-point.

use std::fmt;

/// Number of integer (and separately, FP) architectural registers.
pub const NUM_REGS: usize = 32;

/// Register file class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register file (`r0`..`r31`, `r0` reads as zero).
    Int,
    /// Floating-point register file (`f0`..`f31`).
    Fp,
}

/// An integer register name (`r0`..`r31`).
///
/// `r0` is hardwired to zero: reads return 0 and writes are discarded, as in
/// MIPS/PISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntReg(u8);

/// A floating-point register name (`f0`..`f31`). Holds `f64` bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FpReg(u8);

impl IntReg {
    /// The zero register `r0`.
    pub const ZERO: IntReg = IntReg(0);

    /// Creates `r{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_REGS, "integer register out of range");
        Self(index)
    }

    /// The register number.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl FpReg {
    /// Creates `f{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_REGS, "fp register out of range");
        Self(index)
    }

    /// The register number.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A class-tagged register reference, used wherever either file may appear
/// (renaming, dependence tracking, fault reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegRef {
    class: RegClass,
    index: u8,
}

impl RegRef {
    /// References integer register `r{index}`.
    pub fn int(index: u8) -> Self {
        Self {
            class: RegClass::Int,
            index: IntReg::new(index).index(),
        }
    }

    /// References FP register `f{index}`.
    pub fn fp(index: u8) -> Self {
        Self {
            class: RegClass::Fp,
            index: FpReg::new(index).index(),
        }
    }

    /// The register file this reference names.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register number within its file.
    pub fn index(self) -> u8 {
        self.index
    }

    /// A dense index in `0..64` (integer file first), convenient for map
    /// tables.
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_REGS + self.index as usize,
        }
    }

    /// Whether this is the hardwired-zero integer register.
    pub fn is_zero_reg(self) -> bool {
        self.class == RegClass::Int && self.index == 0
    }
}

impl From<IntReg> for RegRef {
    fn from(r: IntReg) -> Self {
        RegRef::int(r.index())
    }
}

impl From<FpReg> for RegRef {
    fn from(r: FpReg) -> Self {
        RegRef::fp(r.index())
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

/// The committed architectural register state (both files).
///
/// In the paper's design this structure is ECC-protected committed state —
/// the fault injector never corrupts it, and the commit-stage cross-check
/// guarantees only agreed-upon values are written here.
///
/// All values are raw 64-bit words; FP registers hold `f64` bit patterns.
///
/// # Examples
///
/// ```
/// use ftsim_isa::{ArchRegs, IntReg, RegRef};
///
/// let mut regs = ArchRegs::new();
/// regs.write_int(IntReg::new(5), 42);
/// assert_eq!(regs.read_int(IntReg::new(5)), 42);
/// regs.write_int(IntReg::ZERO, 7);
/// assert_eq!(regs.read_int(IntReg::ZERO), 0); // r0 stays zero
/// assert_eq!(regs.read(RegRef::int(5)), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchRegs {
    int: [u64; NUM_REGS],
    fp: [u64; NUM_REGS],
}

impl Default for ArchRegs {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchRegs {
    /// All registers zeroed.
    pub fn new() -> Self {
        Self {
            int: [0; NUM_REGS],
            fp: [0; NUM_REGS],
        }
    }

    /// Reads an integer register (`r0` reads zero).
    pub fn read_int(&self, r: IntReg) -> u64 {
        if r.index() == 0 {
            0
        } else {
            self.int[r.index() as usize]
        }
    }

    /// Writes an integer register (writes to `r0` are discarded).
    pub fn write_int(&mut self, r: IntReg, value: u64) {
        if r.index() != 0 {
            self.int[r.index() as usize] = value;
        }
    }

    /// Reads an FP register as raw bits.
    pub fn read_fp(&self, r: FpReg) -> u64 {
        self.fp[r.index() as usize]
    }

    /// Writes an FP register as raw bits.
    pub fn write_fp(&mut self, r: FpReg, value: u64) {
        self.fp[r.index() as usize] = value;
    }

    /// Reads through a class-tagged reference.
    pub fn read(&self, r: RegRef) -> u64 {
        match r.class() {
            RegClass::Int => self.read_int(IntReg::new(r.index())),
            RegClass::Fp => self.read_fp(FpReg::new(r.index())),
        }
    }

    /// Writes through a class-tagged reference (`r0` writes discarded).
    pub fn write(&mut self, r: RegRef, value: u64) {
        match r.class() {
            RegClass::Int => self.write_int(IntReg::new(r.index()), value),
            RegClass::Fp => self.write_fp(FpReg::new(r.index()), value),
        }
    }

    /// Iterates over all `(reference, value)` pairs, integer file first.
    pub fn iter(&self) -> impl Iterator<Item = (RegRef, u64)> + '_ {
        let ints = self
            .int
            .iter()
            .enumerate()
            .map(|(i, &v)| (RegRef::int(i as u8), if i == 0 { 0 } else { v }));
        let fps = self
            .fp
            .iter()
            .enumerate()
            .map(|(i, &v)| (RegRef::fp(i as u8), v));
        ints.chain(fps)
    }

    /// Returns the registers where `self` and `other` differ.
    pub fn diff(&self, other: &ArchRegs) -> Vec<(RegRef, u64, u64)> {
        self.iter()
            .zip(other.iter())
            .filter(|((_, a), (_, b))| a != b)
            .map(|((r, a), (_, b))| (r, a, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut regs = ArchRegs::new();
        regs.write_int(IntReg::ZERO, 99);
        assert_eq!(regs.read_int(IntReg::ZERO), 0);
        regs.write(RegRef::int(0), 99);
        assert_eq!(regs.read(RegRef::int(0)), 0);
    }

    #[test]
    fn int_and_fp_files_are_separate() {
        let mut regs = ArchRegs::new();
        regs.write(RegRef::int(3), 1);
        regs.write(RegRef::fp(3), 2);
        assert_eq!(regs.read(RegRef::int(3)), 1);
        assert_eq!(regs.read(RegRef::fp(3)), 2);
    }

    #[test]
    fn f0_is_writable() {
        let mut regs = ArchRegs::new();
        regs.write_fp(FpReg::new(0), 7);
        assert_eq!(regs.read_fp(FpReg::new(0)), 7);
    }

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            assert!(seen.insert(RegRef::int(i).flat_index()));
            assert!(seen.insert(RegRef::fp(i).flat_index()));
        }
        assert_eq!(seen.len(), 64);
        assert!(seen.iter().all(|&i| i < 64));
    }

    #[test]
    fn diff_reports_changes() {
        let mut a = ArchRegs::new();
        let b = ArchRegs::new();
        a.write(RegRef::int(4), 9);
        a.write(RegRef::fp(1), 3);
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d.contains(&(RegRef::int(4), 9, 0)));
        assert!(d.contains(&(RegRef::fp(1), 3, 0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_bounds() {
        let _ = IntReg::new(32);
    }

    #[test]
    fn display_names() {
        assert_eq!(IntReg::new(7).to_string(), "r7");
        assert_eq!(FpReg::new(31).to_string(), "f31");
        assert_eq!(RegRef::fp(2).to_string(), "f2");
    }
}
