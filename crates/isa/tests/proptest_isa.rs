//! Property-based tests for the ISA layer: encoding round-trips,
//! assembler/disassembler agreement, and totality of the semantics.

use ftsim_isa::{asm, decode, encode, execute, Inst, Opcode};
use proptest::prelude::*;

fn any_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

fn valid_inst() -> impl Strategy<Value = Inst> {
    (any_opcode(), 0u8..32, 0u8..32, 0u8..32, any::<i32>())
        .prop_map(|(op, rd, rs1, rs2, imm)| Inst::new(op, rd, rs1, rs2, imm))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_roundtrip(inst in valid_inst()) {
        let word = encode(&inst);
        let back = decode(word).expect("valid instruction decodes");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        let _ = decode(word); // Ok or Err, never a panic
    }

    #[test]
    fn execute_is_total(inst in valid_inst(), pc in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        // No instruction may trap on any operands (wrong-path safety).
        let out = execute(&inst, pc & !3, a, b);
        // Taken control transfers always produce a target.
        if out.taken == Some(true) {
            prop_assert!(out.target.is_some());
        }
        // Stores carry both address and datum.
        if inst.op.is_store() {
            prop_assert!(out.ea.is_some() && out.store_value.is_some());
        }
        // Loads produce an address but no early result.
        if inst.op.is_load() {
            prop_assert!(out.ea.is_some() && out.result.is_none());
        }
    }

    #[test]
    fn execute_is_deterministic(inst in valid_inst(), a in any::<u64>(), b in any::<u64>()) {
        let x = execute(&inst, 0x1000, a, b);
        let y = execute(&inst, 0x1000, a, b);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn display_of_noncontrol_reassembles(inst in valid_inst()) {
        // Control instructions print numeric displacements while the
        // assembler wants labels; everything else must round-trip through
        // its textual form. Fields the opcode does not use are not
        // printed, so compare against the canonical (unused-fields-zeroed)
        // form.
        prop_assume!(!inst.op.is_control());
        let canonical = Inst::new(
            inst.op,
            if inst.op.rd_class().is_some() { inst.rd } else { 0 },
            if inst.op.rs1_class().is_some() { inst.rs1 } else { 0 },
            if inst.op.rs2_class().is_some() { inst.rs2 } else { 0 },
            if inst.op.uses_imm() { inst.imm } else { 0 },
        );
        let text = format!("{inst}\nhalt\n");
        let program = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("`{inst}` failed to reassemble: {e}"));
        prop_assert_eq!(program.insts()[0], canonical);
    }
}
