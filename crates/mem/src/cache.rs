//! Set-associative write-back cache timing model.

use std::fmt;

/// Geometry of one cache (or TLB, which reuses the same structure with the
/// line size set to the page size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in statistics output (e.g. `"dl1"`).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Creates a config after validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, `line_bytes` is not a power of two,
    /// or the capacity is not divisible into an integral number of sets.
    pub fn new(name: &str, size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        assert!(
            size_bytes > 0 && assoc > 0 && line_bytes > 0,
            "zero cache parameter"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes;
        assert!(
            lines * line_bytes == size_bytes,
            "capacity not a multiple of line size"
        );
        assert!(
            lines % assoc == 0,
            "line count not divisible by associativity"
        );
        assert!(
            (lines / assoc).is_power_of_two(),
            "set count must be a power of two"
        );
        Self {
            name: name.to_string(),
            size_bytes,
            assoc,
            line_bytes,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / self.line_bytes / self.assoc
    }
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim line was evicted (write-back traffic).
    pub writeback: bool,
}

/// Hit/miss/writeback counts for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in `[0, 1]`; zero when no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // higher = more recently used
}

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement.
///
/// The cache tracks tags only. Data always lives in
/// [`SparseMemory`](crate::SparseMemory), so the model affects *when* an
/// access completes, never *what* it returns — keeping functional behaviour
/// independent of cache geometry.
///
/// # Examples
///
/// ```
/// use ftsim_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new("dl1", 32 * 1024, 2, 32));
/// assert!(!c.access(0x1000, false).hit); // cold miss
/// assert!(c.access(0x1000, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All lines in one flat slab, `assoc` consecutive lines per set —
    /// one allocation, one cache-friendly stride per access.
    lines: Vec<Line>,
    assoc: usize,
    stats: CacheStats,
    tick: u64,
    set_mask: u64,
    offset_bits: u32,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            lines: vec![Line::default(); sets * config.assoc],
            assoc: config.assoc,
            set_mask: (sets - 1) as u64,
            offset_bits: config.line_bytes.trailing_zeros(),
            config,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.offset_bits;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Performs one access; allocates on miss (write-allocate) and marks the
    /// line dirty on writes (write-back).
    pub fn access(&mut self, addr: u64, write: bool) -> CacheOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.lines[set_idx * self.assoc..(set_idx + 1) * self.assoc];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            if write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return CacheOutcome {
                hit: true,
                writeback: false,
            };
        }

        // Miss: pick the LRU way (prefer invalid lines).
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("associativity >= 1");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Returns whether `addr`'s line is currently resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.lines[set_idx * self.assoc..(set_idx + 1) * self.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}B {}-way {}B-line, miss rate {:.2}%",
            self.config.name,
            self.config.size_bytes,
            self.config.assoc,
            self.config.line_bytes,
            self.stats.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128B.
        Cache::new(CacheConfig::new("t", 128, 2, 16))
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x4f, false).hit); // same line
        assert!(!c.access(0x50, false).hit); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets * line = 64).
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x000, false); // touch A again so B is LRU
        c.access(0x080, false); // evicts B
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert!(c.probe(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty A
        c.access(0x040, false);
        let out = c.access(0x080, false); // evicts dirty A (LRU)
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x040, false);
        let out = c.access(0x080, false);
        assert!(!out.writeback);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // hit, now dirty
        c.access(0x040, false);
        let out = c.access(0x080, false); // evict A
        assert!(out.writeback);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x0, true);
        c.reset();
        assert!(!c.probe(0x0));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn miss_rate_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        s.accesses = 10;
        s.hits = 9;
        assert_eq!(s.misses(), 1);
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig::new("x", 128, 2, 24);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for set in 0..4u64 {
            c.access(set * 16, false);
        }
        for set in 0..4u64 {
            assert!(c.probe(set * 16), "set {set} should be resident");
        }
    }
}
