//! Composition of L1I / L1D / unified L2 / TLBs with a latency model.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::ports::PortSet;
use crate::tlb::{Tlb, TlbConfig};

/// Kind of memory access presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store (write-allocate into L1D).
    Write,
    /// Instruction fetch (through L1I).
    Fetch,
}

/// Timing outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles until data is available.
    pub latency: u64,
    /// Whether the access hit in the first-level cache.
    pub l1_hit: bool,
    /// Whether a first-level miss hit in L2 (`false` also when no L1 miss).
    pub l2_hit: bool,
}

/// Cache/memory access latencies in cycles.
///
/// Defaults mirror `sim-outorder`'s: 1-cycle L1, 6-cycle L2, long flat
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// Additional latency for an L2 hit.
    pub l2_hit: u64,
    /// Additional latency for main memory.
    pub memory: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self {
            l1_hit: 1,
            l2_hit: 6,
            memory: 40,
        }
    }
}

/// Full hierarchy configuration (geometries + latencies + L1D ports).
///
/// The default matches the paper's Table 1: 64 KB 2-way L1I, 32 KB 2-way
/// L1D with 2 ports, 512 KB 4-way unified L2.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub il1: CacheConfig,
    /// L1 data cache geometry.
    pub dl1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Latencies per level.
    pub latency: LatencyConfig,
    /// Number of L1D read/write ports (Table 1: 2).
    pub dl1_ports: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            il1: CacheConfig::new("il1", 64 * 1024, 2, 32),
            dl1: CacheConfig::new("dl1", 32 * 1024, 2, 32),
            l2: CacheConfig::new("ul2", 512 * 1024, 4, 64),
            itlb: TlbConfig::new("itlb", 64, 4, 30),
            dtlb: TlbConfig::new("dtlb", 128, 4, 30),
            latency: LatencyConfig::default(),
            dl1_ports: 2,
        }
    }
}

/// The assembled memory hierarchy.
///
/// Purely a *timing* model: callers read and write data through
/// [`SparseMemory`](crate::SparseMemory) and consult the hierarchy only for
/// latencies and port availability.
///
/// # Examples
///
/// ```
/// use ftsim_mem::{AccessKind, Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(&HierarchyConfig::default());
/// h.begin_cycle();
/// assert!(h.try_data_port());
/// let r = h.data_access(0x4000, AccessKind::Read);
/// assert!(!r.l1_hit); // cold
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    latency: LatencyConfig,
    data_ports: PortSet,
}

impl Hierarchy {
    /// Builds an empty hierarchy from `config`.
    pub fn new(config: &HierarchyConfig) -> Self {
        Self {
            il1: Cache::new(config.il1.clone()),
            dl1: Cache::new(config.dl1.clone()),
            l2: Cache::new(config.l2.clone()),
            itlb: Tlb::new(config.itlb.clone()),
            dtlb: Tlb::new(config.dtlb.clone()),
            latency: config.latency,
            data_ports: PortSet::new(config.dl1_ports),
        }
    }

    /// Resets per-cycle resources (call once at the top of every cycle).
    pub fn begin_cycle(&mut self) {
        self.data_ports.begin_cycle();
    }

    /// Attempts to reserve one L1D port for this cycle.
    pub fn try_data_port(&mut self) -> bool {
        self.data_ports.try_acquire()
    }

    /// L1D ports still available this cycle.
    pub fn data_ports_available(&self) -> u32 {
        self.data_ports.available()
    }

    /// Performs an instruction fetch or data access and returns its latency.
    ///
    /// Port accounting is *not* applied here — the pipeline reserves ports
    /// explicitly via [`Hierarchy::try_data_port`] so that replicated copies
    /// which share one memory access (per the paper, only one access is
    /// performed per redundant load/store) charge exactly one port.
    pub fn data_access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        let write = matches!(kind, AccessKind::Write);
        let (l1, tlb_extra) = match kind {
            AccessKind::Fetch => (&mut self.il1, self.itlb.access(addr)),
            _ => (&mut self.dl1, self.dtlb.access(addr)),
        };
        let l1_out = l1.access(addr, write);
        if l1_out.hit {
            return AccessResult {
                latency: self.latency.l1_hit + tlb_extra,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let l2_out = self.l2.access(addr, write);
        if l2_out.hit {
            AccessResult {
                latency: self.latency.l1_hit + self.latency.l2_hit + tlb_extra,
                l1_hit: false,
                l2_hit: true,
            }
        } else {
            AccessResult {
                latency: self.latency.l1_hit
                    + self.latency.l2_hit
                    + self.latency.memory
                    + tlb_extra,
                l1_hit: false,
                l2_hit: false,
            }
        }
    }

    /// Instruction-fetch convenience wrapper over [`Hierarchy::data_access`].
    pub fn fetch_access(&mut self, addr: u64) -> AccessResult {
        self.data_access(addr, AccessKind::Fetch)
    }

    /// Statistics: `(il1, dl1, l2)` cache stats.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.il1.stats(), self.dl1.stats(), self.l2.stats())
    }

    /// Statistics: `(itlb, dtlb)` stats.
    pub fn tlb_stats(&self) -> (CacheStats, CacheStats) {
        (self.itlb.stats(), self.dtlb.stats())
    }

    /// Invalidates all caches/TLBs and clears statistics.
    pub fn reset(&mut self) {
        self.il1.reset();
        self.dl1.reset();
        self.l2.reset();
        self.itlb.reset();
        self.dtlb.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        let cfg = HierarchyConfig {
            il1: CacheConfig::new("il1", 1024, 2, 32),
            dl1: CacheConfig::new("dl1", 1024, 2, 32),
            l2: CacheConfig::new("l2", 8192, 4, 64),
            itlb: TlbConfig::new("itlb", 8, 4, 30),
            dtlb: TlbConfig::new("dtlb", 8, 4, 30),
            latency: LatencyConfig::default(),
            dl1_ports: 2,
        };
        Hierarchy::new(&cfg)
    }

    #[test]
    fn latency_tiers() {
        let mut h = small();
        let lat = h.latency;
        // Cold: L1 miss, L2 miss, plus cold dtlb.
        let r0 = h.data_access(0x100, AccessKind::Read);
        assert!(!r0.l1_hit && !r0.l2_hit);
        assert_eq!(r0.latency, lat.l1_hit + lat.l2_hit + lat.memory + 30);
        // Warm L1.
        let r1 = h.data_access(0x100, AccessKind::Read);
        assert!(r1.l1_hit);
        assert_eq!(r1.latency, lat.l1_hit);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = small();
        // dl1: 16 sets... 1024/32/2 = 16 sets. Fill set 0 with 3 conflicting lines.
        let stride = 16 * 32; // sets * line
        h.data_access(0, AccessKind::Read);
        h.data_access(stride, AccessKind::Read);
        h.data_access(2 * stride, AccessKind::Read); // evicts addr 0 from dl1
        let r = h.data_access(0, AccessKind::Read); // L1 miss, L2 hit
        assert!(!r.l1_hit && r.l2_hit);
    }

    #[test]
    fn fetch_uses_il1_not_dl1() {
        let mut h = small();
        h.fetch_access(0x40);
        let (il1, dl1, _) = h.cache_stats();
        assert_eq!(il1.accesses, 1);
        assert_eq!(dl1.accesses, 0);
    }

    #[test]
    fn ports_gate_per_cycle() {
        let mut h = small();
        h.begin_cycle();
        assert!(h.try_data_port());
        assert!(h.try_data_port());
        assert!(!h.try_data_port());
        h.begin_cycle();
        assert_eq!(h.data_ports_available(), 2);
    }

    #[test]
    fn reset_clears_stats() {
        let mut h = small();
        h.data_access(0, AccessKind::Write);
        h.reset();
        let (_, dl1, l2) = h.cache_stats();
        assert_eq!(dl1.accesses, 0);
        assert_eq!(l2.accesses, 0);
    }

    #[test]
    fn default_config_matches_table1() {
        let cfg = HierarchyConfig::default();
        assert_eq!(cfg.il1.size_bytes, 64 * 1024);
        assert_eq!(cfg.il1.assoc, 2);
        assert_eq!(cfg.dl1.size_bytes, 32 * 1024);
        assert_eq!(cfg.dl1.assoc, 2);
        assert_eq!(cfg.dl1_ports, 2);
        assert_eq!(cfg.l2.size_bytes, 512 * 1024);
        assert_eq!(cfg.l2.assoc, 4);
    }
}
