//! Memory substrate for the `ftsim` fault-tolerant superscalar simulator.
//!
//! The paper's evaluation platform (SimpleScalar `sim-outorder`, Table 1)
//! models a two-level cache hierarchy in front of a flat memory:
//!
//! * 64 KB 2-way L1 instruction cache,
//! * 32 KB 2-way L1 data cache with 2 read/write ports,
//! * 512 KB 4-way unified L2,
//! * instruction/data TLBs.
//!
//! This crate provides those pieces:
//!
//! * [`SparseMemory`] — a byte-addressable, paged, lazily-allocated main
//!   memory that also serves as the *committed architectural memory* (the
//!   paper assumes all committed state is ECC-protected; correspondingly the
//!   fault injector never targets this structure);
//! * [`Cache`] — a set-associative, write-back/write-allocate, LRU cache
//!   timing model;
//! * [`Tlb`] — a page-granularity translation cache;
//! * [`Hierarchy`] — L1I/L1D/L2/TLB composition returning access latencies
//!   and arbitrating the L1D ports per cycle.
//!
//! Caches model *timing only*: data always comes from [`SparseMemory`], so
//! functional correctness is independent of cache configuration — an
//! invariant the test-suite checks explicitly.
//!
//! # Examples
//!
//! ```
//! use ftsim_mem::{Hierarchy, HierarchyConfig, AccessKind};
//!
//! let mut h = Hierarchy::new(&HierarchyConfig::default());
//! h.begin_cycle();
//! let first = h.data_access(0x1000, AccessKind::Read);
//! h.begin_cycle();
//! let second = h.data_access(0x1000, AccessKind::Read);
//! assert!(second.latency < first.latency); // second access hits in L1
//! ```

#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod memory;
mod ports;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheOutcome, CacheStats};
pub use hierarchy::{AccessKind, AccessResult, Hierarchy, HierarchyConfig, LatencyConfig};
pub use memory::{MemDiff, SparseMemory, PAGE_BYTES};
pub use ports::PortSet;
pub use tlb::{Tlb, TlbConfig};
