//! Sparse, paged, byte-addressable main memory.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Bytes per memory page.
pub const PAGE_BYTES: usize = 4096;

/// Sentinel for "no page cached" (no reachable address maps to this page
/// number: the largest byte address yields page `u64::MAX / PAGE_BYTES`).
const NO_PAGE: u64 = u64::MAX;

/// A lazily-allocated, byte-addressable memory.
///
/// Reads of unmapped locations return zero, which gives the simulator total
/// semantics on wrong-path (speculative) accesses — a mispredicted load can
/// touch any address without failing. Written pages are tracked so two
/// memories can be compared cheaply ([`SparseMemory::diff`]), which is how
/// the out-of-order simulator's committed memory is validated against the
/// in-order oracle (the paper's dual committed-state sanity check, §5.1.1).
///
/// All multi-byte accesses are little-endian and may straddle page
/// boundaries.
///
/// Page storage is an arena (`Vec` of reference-counted pages) indexed by
/// a `BTreeMap`, with a one-entry last-page cache in front: sequential and
/// same-page accesses — the overwhelmingly common pattern in the
/// simulated load/store stream — skip the tree lookup entirely. Pages are
/// never deallocated, so cached slots can never dangle.
///
/// Pages are copy-on-write: [`Clone`] bumps each page's reference count
/// instead of copying bytes, so a checkpoint of a multi-megabyte memory
/// costs one pointer per page, and the first write to a shared page after
/// a clone faults just that page (O([`PAGE_BYTES`])) into private
/// storage. This is what makes periodic machine snapshots cheap enough to
/// drop every few thousand cycles during a sweep's baseline run.
///
/// # Examples
///
/// ```
/// use ftsim_mem::SparseMemory;
///
/// let mut m = SparseMemory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x2000), 0); // unmapped reads as zero
/// ```
#[derive(Debug, Clone)]
pub struct SparseMemory {
    /// Page number → arena slot.
    index: BTreeMap<u64, usize>,
    /// Page storage; slots are stable (pages are never removed). Shared
    /// copy-on-write with any clone of this memory.
    pages: Vec<Arc<[u8; PAGE_BYTES]>>,
    /// Last-translated `(page number, arena slot)`; `NO_PAGE` when cold.
    /// Interior mutability lets plain reads refresh the cache.
    last: Cell<(u64, usize)>,
}

impl Default for SparseMemory {
    fn default() -> Self {
        Self {
            index: BTreeMap::new(),
            pages: Vec::new(),
            last: Cell::new((NO_PAGE, 0)),
        }
    }
}

/// One difference found by [`SparseMemory::diff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDiff {
    /// Byte address of the first differing byte of an 8-byte-aligned word.
    pub addr: u64,
    /// Word value in `self`.
    pub left: u64,
    /// Word value in `other`.
    pub right: u64,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_index(addr: u64) -> (u64, usize) {
        (
            addr / PAGE_BYTES as u64,
            (addr % PAGE_BYTES as u64) as usize,
        )
    }

    /// Arena slot of page `p`, consulting the one-entry cache before the
    /// tree and refreshing it on a tree hit.
    fn slot_of(&self, p: u64) -> Option<usize> {
        let (lp, ls) = self.last.get();
        if lp == p {
            return Some(ls);
        }
        let slot = *self.index.get(&p)?;
        self.last.set((p, slot));
        Some(slot)
    }

    /// Arena slot of page `p`, allocating it on first touch.
    fn slot_of_or_alloc(&mut self, p: u64) -> usize {
        if let Some(slot) = self.slot_of(p) {
            return slot;
        }
        let slot = self.pages.len();
        self.pages.push(Arc::new([0u8; PAGE_BYTES]));
        self.index.insert(p, slot);
        self.last.set((p, slot));
        slot
    }

    /// Reads one byte; unmapped locations read as zero.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (p, off) = Self::page_index(addr);
        self.slot_of(p).map_or(0, |slot| self.pages[slot][off])
    }

    /// Writes one byte, allocating the page on demand.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let (p, off) = Self::page_index(addr);
        let slot = self.slot_of_or_alloc(p);
        Arc::make_mut(&mut self.pages[slot])[off] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut buf = [0u8; N];
        let (p, off) = Self::page_index(addr);
        if off + N <= PAGE_BYTES {
            // Within one page (the common case): one translation, one copy.
            if let Some(slot) = self.slot_of(p) {
                buf.copy_from_slice(&self.pages[slot][off..off + N]);
            }
            return buf;
        }
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        buf
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let (p, off) = Self::page_index(addr);
        if off + bytes.len() <= PAGE_BYTES {
            let slot = self.slot_of_or_alloc(p);
            Arc::make_mut(&mut self.pages[slot])[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads `size` bytes (1, 2, 4 or 8) zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read_sized(&self, addr: u64, size: u8) -> u64 {
        match size {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Writes the low `size` bytes (1, 2, 4 or 8) of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn write_sized(&mut self, addr: u64, value: u64, size: u8) {
        match size {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Number of allocated (ever-written) pages.
    pub fn page_count(&self) -> usize {
        self.index.len()
    }

    /// Number of pages physically shared (same backing storage) with
    /// `other` — checkpointing diagnostics: a fresh clone shares every
    /// page; writes then peel pages off one at a time.
    pub fn pages_shared_with(&self, other: &SparseMemory) -> usize {
        self.index
            .iter()
            .filter(|(page, &slot)| {
                other
                    .index
                    .get(page)
                    .is_some_and(|&o| Arc::ptr_eq(&self.pages[slot], &other.pages[o]))
            })
            .count()
    }

    /// Folds this memory's *contents* into a running FNV-1a hash and
    /// returns the updated hash.
    ///
    /// The digest is content-based, matching read-as-zero semantics: only
    /// nonzero bytes contribute, each as `(address, value)`, with pages
    /// visited in ascending address order. Two memories with equal
    /// readable contents therefore digest identically regardless of which
    /// all-zero pages happen to be allocated — the property the outcome
    /// classifier relies on when comparing a faulty run's committed state
    /// against its family's fault-free baseline.
    pub fn content_digest(&self, mut hash: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        for (&page, &slot) in &self.index {
            let base = page * PAGE_BYTES as u64;
            for (off, &byte) in self.pages[slot].iter().enumerate() {
                if byte == 0 {
                    continue;
                }
                let addr = base + off as u64;
                for b in addr.to_le_bytes() {
                    hash = (hash ^ u64::from(b)).wrapping_mul(PRIME);
                }
                hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        }
        hash
    }

    /// Compares the union of allocated pages of `self` and `other`,
    /// returning up to `limit` differing 8-byte words.
    ///
    /// Unallocated pages compare equal to all-zero pages, matching the
    /// read-as-zero semantics.
    pub fn diff(&self, other: &SparseMemory, limit: usize) -> Vec<MemDiff> {
        let mut out = Vec::new();
        let zero = [0u8; PAGE_BYTES];
        let pages: std::collections::BTreeSet<u64> = self
            .index
            .keys()
            .chain(other.index.keys())
            .copied()
            .collect();
        for p in pages {
            let a = self.index.get(&p).map_or(&zero, |&s| &*self.pages[s]);
            let b = other.index.get(&p).map_or(&zero, |&s| &*other.pages[s]);
            if a == b {
                continue;
            }
            for w in 0..(PAGE_BYTES / 8) {
                let off = w * 8;
                let wa = u64::from_le_bytes(a[off..off + 8].try_into().unwrap());
                let wb = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
                if wa != wb {
                    out.push(MemDiff {
                        addr: p * PAGE_BYTES as u64 + off as u64,
                        left: wa,
                        right: wb,
                    });
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_unmapped_is_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0xffff_ffff_ffff_fff0), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn write_read_roundtrip_all_sizes() {
        let mut m = SparseMemory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn content_digest_is_content_based() {
        const SEED: u64 = 0xcbf2_9ce4_8422_2325;
        let mut a = SparseMemory::new();
        a.write_u64(0x1000, 7);
        let mut b = SparseMemory::new();
        // An extra all-zero page (written then reverted) must not change
        // the digest: reads cannot distinguish it from an unmapped page.
        b.write_u64(0x9000, 1);
        b.write_u64(0x9000, 0);
        b.write_u64(0x1000, 7);
        assert_eq!(a.content_digest(SEED), b.content_digest(SEED));
        assert_eq!(
            SparseMemory::new().content_digest(SEED),
            SEED,
            "empty memory leaves the hash untouched"
        );
        // A one-bit difference in content changes the digest.
        let mut c = SparseMemory::new();
        c.write_u64(0x1000, 6);
        assert_ne!(a.content_digest(SEED), c.content_digest(SEED));
        // So does the same byte at a different address.
        let mut d = SparseMemory::new();
        d.write_u64(0x1008, 7);
        assert_ne!(a.content_digest(SEED), d.content_digest(SEED));
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = PAGE_BYTES as u64 - 4;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn sized_access_matches_fixed() {
        let mut m = SparseMemory::new();
        m.write_sized(100, 0xffee_ddcc_bbaa_9988, 4);
        assert_eq!(m.read_sized(100, 4), 0xbbaa_9988);
        assert_eq!(m.read_sized(100, 8), 0xbbaa_9988); // upper bytes untouched
        m.write_sized(200, 0x7f, 1);
        assert_eq!(m.read_sized(200, 1), 0x7f);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn bad_size_panics() {
        let m = SparseMemory::new();
        let _ = m.read_sized(0, 3);
    }

    #[test]
    fn diff_detects_single_word() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        a.write_u64(0x1000, 1);
        b.write_u64(0x1000, 2);
        b.write_u64(0x9000, 0); // allocated but equal to zero page in `a`
        let d = a.diff(&b, 16);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].addr, 0x1000);
        assert_eq!((d[0].left, d[0].right), (1, 2));
    }

    #[test]
    fn diff_equal_memories_is_empty() {
        let mut a = SparseMemory::new();
        a.write_u64(0, 7);
        let b = a.clone();
        assert!(a.diff(&b, 8).is_empty());
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = SparseMemory::new();
        a.write_u64(0x1000, 11);
        a.write_u64(0x5000, 22);
        let b = a.clone();
        assert_eq!(a.pages_shared_with(&b), 2, "a fresh clone shares all pages");
        // Writing through the clone peels only the touched page.
        let mut b = b;
        b.write_u64(0x1000, 99);
        assert_eq!(a.pages_shared_with(&b), 1);
        assert_eq!(a.read_u64(0x1000), 11, "original page unharmed");
        assert_eq!(b.read_u64(0x1000), 99);
        assert_eq!(b.read_u64(0x5000), 22, "untouched page still shared");
        // A new page in the clone never appears in the original.
        b.write_u8(0x9000, 1);
        assert_eq!(a.read_u8(0x9000), 0);
        assert_eq!(a.page_count(), 2);
        assert_eq!(b.page_count(), 3);
    }

    #[test]
    fn diff_respects_limit() {
        let mut a = SparseMemory::new();
        let b = SparseMemory::new();
        for i in 0..10 {
            a.write_u64(i * 8, i + 1);
        }
        assert_eq!(a.diff(&b, 3).len(), 3);
    }
}
