//! Per-cycle port arbitration.

/// A pool of identical ports that refills every cycle.
///
/// The baseline machine (Table 1) gives the L1 data cache two read/write
/// ports; memory instructions that cannot acquire a port retry the next
/// cycle. The paper notes the port count is *not* increased in redundant
/// mode ("the number of register file and memory ports cannot be reduced
/// since the overall processor design must remain balanced", §3.2), so
/// redundant copies compete for the same two ports.
///
/// # Examples
///
/// ```
/// use ftsim_mem::PortSet;
///
/// let mut p = PortSet::new(2);
/// assert!(p.try_acquire());
/// assert!(p.try_acquire());
/// assert!(!p.try_acquire()); // both busy this cycle
/// p.begin_cycle();
/// assert!(p.try_acquire()); // refilled
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSet {
    total: u32,
    used: u32,
}

impl PortSet {
    /// Creates a pool of `total` ports.
    pub fn new(total: u32) -> Self {
        Self { total, used: 0 }
    }

    /// Releases all ports for a new cycle.
    pub fn begin_cycle(&mut self) {
        self.used = 0;
    }

    /// Attempts to take one port for the current cycle.
    pub fn try_acquire(&mut self) -> bool {
        if self.used < self.total {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Ports still free this cycle.
    pub fn available(&self) -> u32 {
        self.total - self.used
    }

    /// Configured number of ports.
    pub fn total(&self) -> u32 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_exhausted() {
        let mut p = PortSet::new(3);
        assert_eq!(p.available(), 3);
        for _ in 0..3 {
            assert!(p.try_acquire());
        }
        assert!(!p.try_acquire());
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn begin_cycle_refills() {
        let mut p = PortSet::new(1);
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        p.begin_cycle();
        assert!(p.try_acquire());
    }

    #[test]
    fn zero_ports_always_fail() {
        let mut p = PortSet::new(0);
        assert!(!p.try_acquire());
        assert_eq!(p.total(), 0);
    }
}
