//! Page-granularity translation lookaside buffers.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::memory::PAGE_BYTES;

/// Geometry of a TLB.
///
/// Following the paper's assumptions (§3.1), TLBs hold *committed* program
/// state and are ECC-protected, so the fault injector never targets them;
/// they exist purely for timing fidelity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Display name, e.g. `"dtlb"`.
    pub name: String,
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
    /// Extra latency charged on a TLB miss (hardware walk), in cycles.
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// Creates a TLB config.
    pub fn new(name: &str, entries: usize, assoc: usize, miss_penalty: u64) -> Self {
        Self {
            name: name.to_string(),
            entries,
            assoc,
            miss_penalty,
        }
    }
}

/// A TLB modeled as a set-associative tag cache over page numbers.
///
/// # Examples
///
/// ```
/// use ftsim_mem::{Tlb, TlbConfig};
///
/// let mut t = Tlb::new(TlbConfig::new("dtlb", 64, 4, 30));
/// assert_eq!(t.access(0x1000), 30); // cold miss pays the walk
/// assert_eq!(t.access(0x1008), 0);  // same page hits
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
    miss_penalty: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let cache_cfg = CacheConfig::new(
            &config.name,
            config.entries * PAGE_BYTES,
            config.assoc,
            PAGE_BYTES,
        );
        Self {
            inner: Cache::new(cache_cfg),
            miss_penalty: config.miss_penalty,
        }
    }

    /// Translates `addr`, returning the extra cycles charged (0 on hit).
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.inner.access(addr, false).hit {
            0
        } else {
            self.miss_penalty
        }
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Invalidates all entries and clears statistics.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(TlbConfig::new("t", 16, 4, 25));
        assert_eq!(t.access(0), 25);
        assert_eq!(t.access(100), 0);
        assert_eq!(t.access(4095), 0);
        assert_eq!(t.access(4096), 25); // next page
    }

    #[test]
    fn capacity_eviction() {
        // Fully-associative 2-entry TLB.
        let mut t = Tlb::new(TlbConfig::new("t", 2, 2, 10));
        t.access(0);
        t.access(4096);
        t.access(0); // keep page 0 warm
        assert_eq!(t.access(8192), 10); // evicts page 1
        assert_eq!(t.access(0), 0);
        assert_eq!(t.access(4096), 10); // was evicted
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::new(TlbConfig::new("t", 4, 4, 5));
        t.access(0);
        t.access(0);
        assert_eq!(t.stats().accesses, 2);
        assert_eq!(t.stats().hits, 1);
        t.reset();
        assert_eq!(t.stats().accesses, 0);
    }
}
