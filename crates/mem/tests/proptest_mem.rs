//! Property-based tests for the memory substrate: SparseMemory against a
//! byte-map model, and cache sanity under arbitrary access streams.

use ftsim_mem::{Cache, CacheConfig, SparseMemory};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum MemOp {
    Write { addr: u64, value: u64, size: u8 },
    Read { addr: u64 },
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    let size = prop::sample::select(vec![1u8, 2, 4, 8]);
    prop_oneof![
        3 => (0u64..0x8000, any::<u64>(), size).prop_map(|(addr, value, size)| MemOp::Write {
            addr,
            value,
            size
        }),
        1 => (0u64..0x8000).prop_map(|addr| MemOp::Read { addr }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sparse_memory_matches_byte_map(ops in prop::collection::vec(mem_op(), 1..200)) {
        let mut mem = SparseMemory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match *op {
                MemOp::Write { addr, value, size } => {
                    mem.write_sized(addr, value, size);
                    for i in 0..u64::from(size) {
                        model.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                MemOp::Read { addr } => {
                    let expect = model.get(&addr).copied().unwrap_or(0);
                    prop_assert_eq!(mem.read_u8(addr), expect);
                }
            }
        }
        // Full sweep at the end: every byte agrees with the model.
        for (&addr, &byte) in &model {
            prop_assert_eq!(mem.read_u8(addr), byte);
        }
    }

    #[test]
    fn memory_diff_is_reflexive_and_sound(ops in prop::collection::vec(mem_op(), 1..100)) {
        let mut a = SparseMemory::new();
        for op in &ops {
            if let MemOp::Write { addr, value, size } = *op {
                a.write_sized(addr, value, size);
            }
        }
        let b = a.clone();
        prop_assert!(a.diff(&b, 64).is_empty());
        // A single-byte perturbation is always found.
        let mut c = a.clone();
        c.write_u8(0x123, c.read_u8(0x123).wrapping_add(1));
        prop_assert_eq!(c.diff(&a, 64).len(), 1);
    }

    #[test]
    fn cache_stats_are_consistent(addrs in prop::collection::vec(0u64..0x10000, 1..500)) {
        let mut cache = Cache::new(CacheConfig::new("t", 4096, 2, 32));
        for (i, &addr) in addrs.iter().enumerate() {
            cache.access(addr, i % 4 == 0);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.hits <= s.accesses);
        prop_assert!(s.writebacks <= s.misses());
        prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
    }

    #[test]
    fn repeated_access_to_resident_line_always_hits(addr in 0u64..0x10000) {
        let mut cache = Cache::new(CacheConfig::new("t", 4096, 2, 32));
        cache.access(addr, false);
        for _ in 0..10 {
            prop_assert!(cache.access(addr, false).hit);
        }
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits(
        base in 0u64..0x1000,
        lines in 1usize..64, // 64 lines = half of a 128-line cache
    ) {
        let mut cache = Cache::new(CacheConfig::new("t", 4096, 2, 32));
        // Two passes over a working set that fits: second pass all hits.
        for _ in 0..2 {
            for i in 0..lines {
                cache.access(base + (i as u64) * 32, false);
            }
        }
        let s = cache.stats();
        prop_assert!(s.hits >= lines as u64, "hits {} < lines {lines}", s.hits);
    }
}
