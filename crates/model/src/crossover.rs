//! Crossover analysis between the `R = 2` rewind design and the `R = 3`
//! majority design (§4.3, §5.3).
//!
//! The paper observes: "IPC of the more efficient 'R = 2' design
//! eventually drops below the 'R = 3' design, but the cross-over occurs at
//! a much higher fault frequency than what our design is intended for."

use crate::recovery::{ipc_with_faults, ipc_with_faults_majority};

/// Crossover-search failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossoverError {
    /// The two designs do not cross within the searched frequency range.
    NoCrossing,
}

impl std::fmt::Display for CrossoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossoverError::NoCrossing => write!(f, "no crossover in the searched range"),
        }
    }
}

impl std::error::Error for CrossoverError {}

/// Finds the fault frequency at which the `R = 2` rewind design's IPC
/// falls below the `R = 3` majority design's, by bisection on `log f`.
///
/// `ipc_ff_r2` / `ipc_ff_r3` are the designs' error-free IPCs (for the
/// normalized Figure 3 machine: `1/2` and `1/3`); `w` is the rewind
/// penalty.
///
/// # Errors
///
/// [`CrossoverError::NoCrossing`] if the curves do not cross in
/// `[10⁻⁹, 0.5]` — e.g. when `ipc_ff_r2 < ipc_ff_r3`.
///
/// # Examples
///
/// ```
/// use ftsim_model::crossover_frequency;
///
/// let f = crossover_frequency(0.5, 1.0 / 3.0, 20.0).unwrap();
/// // The crossover sits far beyond any realistic soft-error rate
/// // (thousands of faults per million instructions).
/// assert!(f > 1e-3);
/// ```
pub fn crossover_frequency(ipc_ff_r2: f64, ipc_ff_r3: f64, w: f64) -> Result<f64, CrossoverError> {
    let gap = |f: f64| {
        ipc_with_faults(ipc_ff_r2, 2, f, w) - ipc_with_faults_majority(ipc_ff_r3, 3, 2, f, w)
    };
    let (mut lo, mut hi) = (1e-9f64, 0.5f64);
    if gap(lo) <= 0.0 || gap(hi) >= 0.0 {
        return Err(CrossoverError::NoCrossing);
    }
    for _ in 0..200 {
        let mid = (lo.ln() + hi.ln()) / 2.0;
        let mid = mid.exp();
        if gap(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo * hi).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_exists_and_is_extreme() {
        let f = crossover_frequency(0.5, 1.0 / 3.0, 20.0).unwrap();
        // R=2 must be better below, worse above.
        let below = f / 10.0;
        let above = (f * 10.0).min(0.4);
        assert!(
            ipc_with_faults(0.5, 2, below, 20.0)
                > ipc_with_faults_majority(1.0 / 3.0, 3, 2, below, 20.0)
        );
        assert!(
            ipc_with_faults(0.5, 2, above, 20.0)
                < ipc_with_faults_majority(1.0 / 3.0, 3, 2, above, 20.0)
        );
        // "Much higher than intended": over a thousand faults per million.
        assert!(f > 1e-3, "crossover {f} too low");
    }

    #[test]
    fn larger_w_moves_crossover_down() {
        let f20 = crossover_frequency(0.5, 1.0 / 3.0, 20.0).unwrap();
        let f2000 = crossover_frequency(0.5, 1.0 / 3.0, 2000.0).unwrap();
        assert!(f2000 < f20);
    }

    #[test]
    fn degenerate_inputs_report_no_crossing() {
        // R=2 curve starting below R=3 never crosses downward.
        assert_eq!(
            crossover_frequency(0.2, 1.0 / 3.0, 20.0),
            Err(CrossoverError::NoCrossing)
        );
    }
}
