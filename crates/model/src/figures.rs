//! Curve generation for Figures 3 and 4.

use crate::recovery::{ipc_with_faults, ipc_with_faults_majority};

/// Which recovery design a curve models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryDesign {
    /// `R`-way redundancy, rewind on any disagreement.
    Rewind {
        /// Degree of redundancy.
        r: u8,
    },
    /// `R`-way redundancy with majority election at the given threshold.
    Majority {
        /// Degree of redundancy.
        r: u8,
        /// Copies that must agree to elect.
        threshold: u8,
    },
}

impl RecoveryDesign {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            RecoveryDesign::Rewind { r } => format!("R={r} (rewind)"),
            RecoveryDesign::Majority { r, threshold } => {
                format!("R={r} ({threshold}-of-{r} majority)")
            }
        }
    }

    /// Error-free IPC on the normalized machine of §4.3 (`IPC₁ = B = 1`,
    /// fully saturated, so `IPC_ff = 1 / R`).
    pub fn normalized_ipc_ff(self) -> f64 {
        match self {
            RecoveryDesign::Rewind { r } | RecoveryDesign::Majority { r, .. } => 1.0 / f64::from(r),
        }
    }

    /// IPC at fault frequency `f` with rewind penalty `w`, from the given
    /// error-free IPC.
    pub fn ipc(self, ipc_ff: f64, f: f64, w: f64) -> f64 {
        match self {
            RecoveryDesign::Rewind { r } => ipc_with_faults(ipc_ff, r, f, w),
            RecoveryDesign::Majority { r, threshold } => {
                ipc_with_faults_majority(ipc_ff, r, threshold, f, w)
            }
        }
    }
}

/// One named model curve: `(fault frequency, IPC)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Legend label.
    pub name: String,
    /// `(f, IPC)` samples, log-spaced in `f`.
    pub points: Vec<(f64, f64)>,
}

/// Generates the three curves of the paper's Figure 3 / Figure 4 for a
/// given rewind penalty `w`, over `f ∈ [lo, hi]` (log-spaced, `n` points),
/// on the normalized machine (`IPC₁ = B = 1`):
/// `R = 2` rewind, `R = 3` rewind, and `R = 3` 2-of-3 majority.
///
/// # Examples
///
/// ```
/// let curves = ftsim_model::recovery_curves(20.0, 1e-7, 1e-1, 25);
/// assert_eq!(curves.len(), 3);
/// assert_eq!(curves[0].points.len(), 25);
/// ```
pub fn recovery_curves(w: f64, lo: f64, hi: f64, n: usize) -> Vec<Curve> {
    assert!(lo > 0.0 && hi > lo, "bad frequency range");
    assert!(n >= 2, "need at least two samples");
    let designs = [
        RecoveryDesign::Rewind { r: 2 },
        RecoveryDesign::Rewind { r: 3 },
        RecoveryDesign::Majority { r: 3, threshold: 2 },
    ];
    let (l0, l1) = (lo.log10(), hi.log10());
    designs
        .iter()
        .map(|d| Curve {
            name: d.label(),
            points: (0..n)
                .map(|i| {
                    let f = 10f64.powf(l0 + (l1 - l0) * i as f64 / (n - 1) as f64);
                    (f, d.ipc(d.normalized_ipc_ff(), f, w))
                })
                .collect(),
        })
        .collect()
}

/// Figure 3: `W = 20` cycles (fine-grain rewind recovery).
pub fn figure3_curves() -> Vec<Curve> {
    recovery_curves(20.0, 1e-7, 1e-1, 25)
}

/// Figure 4: `W = 2000` cycles (coarse-grain checkpoint recovery).
pub fn figure4_curves() -> Vec<Curve> {
    recovery_curves(2000.0, 1e-7, 1e-1, 25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape() {
        let curves = figure3_curves();
        let r2 = &curves[0];
        let r3 = &curves[1];
        let r3m = &curves[2];
        // Flat at the left edge, at the error-free values 1/2 and 1/3.
        assert!((r2.points[0].1 - 0.5).abs() < 1e-3);
        assert!((r3.points[0].1 - 1.0 / 3.0).abs() < 1e-3);
        assert!((r3m.points[0].1 - 1.0 / 3.0).abs() < 1e-3);
        // Paper: "IPC of R=2 and R=3 stays relatively constant until 1/f
        // is within two orders of magnitude of W".
        let at = |c: &Curve, f: f64| {
            c.points
                .iter()
                .min_by(|a, b| (a.0 - f).abs().total_cmp(&(b.0 - f).abs()))
                .unwrap()
                .1
        };
        assert!(at(r2, 1e-5) > 0.49); // 1/f = 1e5 >> W·100
        assert!(at(r2, 1e-1) < 0.2); // deep in the degraded region
                                     // Majority curve stays flat where the rewind curves have dropped.
        assert!(at(r3m, 1e-3) > at(r3, 1e-3));
    }

    #[test]
    fn figure4_knee_is_two_orders_earlier() {
        let f3 = figure3_curves();
        let f4 = figure4_curves();
        let drop_point = |c: &Curve| {
            c.points
                .iter()
                .find(|(_, ipc)| *ipc < 0.45)
                .map(|(f, _)| *f)
                .unwrap()
        };
        let ratio = drop_point(&f3[0]) / drop_point(&f4[0]);
        assert!(ratio > 10.0, "W=2000 knee only {ratio}x earlier");
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(RecoveryDesign::Rewind { r: 2 }.label(), "R=2 (rewind)");
        assert_eq!(
            RecoveryDesign::Majority { r: 3, threshold: 2 }.label(),
            "R=3 (2-of-3 majority)"
        );
    }

    #[test]
    fn normalized_ipc_ff() {
        assert_eq!(RecoveryDesign::Rewind { r: 2 }.normalized_ipc_ff(), 0.5);
        assert!(
            (RecoveryDesign::Majority { r: 3, threshold: 2 }.normalized_ipc_ff() - 1.0 / 3.0).abs()
                < 1e-15
        );
    }
}
