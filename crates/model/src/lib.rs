//! Analytical performance model for a fault-tolerant superscalar
//! (Section 4 of Ray, Hoe & Falsafi, MICRO 2001).
//!
//! The model has two parts:
//!
//! * **Steady-state penalty** (§4.1): replicating every instruction `R`
//!   times divides the machine's peak throughput by `R`, but only costs an
//!   application its ILP surplus:
//!   `IPC_R = min(IPC_1, B / R)` where `B` is the first resource
//!   bottleneck the application exercises (typically the count of one
//!   functional-unit type).
//! * **Recovery penalty** (§4.2): with fault frequency `f` (faults per
//!   instruction per copy) and a rewind penalty of `W` cycles, a rewind
//!   design pays `W` extra cycles every `1/(R·f)` instructions:
//!   `IPC_R(f) = IPC_ff / (1 + R·f·W·IPC_ff)`.
//!   A majority-election design (`R ≥ 3`) rewinds only when fewer than the
//!   acceptance threshold of copies remain clean, replacing `R·f` with a
//!   binomial tail probability.
//!
//! The model is deliberately first-order; the paper notes it is inaccurate
//! once `1/f` approaches `W` (rapid fault successions share one rewind).
//! [`validity_bound`] exposes that limit.
//!
//! # Examples
//!
//! ```
//! use ftsim_model::{steady_state_ipc, ipc_with_faults};
//!
//! // An application with ILP surplus loses nothing at R = 2...
//! assert_eq!(steady_state_ipc(1.5, 4.0, 2), 1.5);
//! // ...a saturated one halves.
//! assert_eq!(steady_state_ipc(4.0, 4.0, 2), 2.0);
//!
//! // Figure 3's flat region: W = 20, f = 1e-6 barely dents IPC.
//! let ipc = ipc_with_faults(0.5, 2, 1e-6, 20.0);
//! assert!((ipc - 0.5).abs() < 1e-4);
//! ```

#![warn(missing_docs)]

mod crossover;
mod figures;
mod recovery;
mod steady;

pub use crossover::{crossover_frequency, CrossoverError};
pub use figures::{figure3_curves, figure4_curves, recovery_curves, Curve, RecoveryDesign};
pub use recovery::{
    binomial_tail, ipc_with_faults, ipc_with_faults_majority, rewind_probability_majority,
    validity_bound,
};
pub use steady::{redundant_throughput_factor, steady_state_ipc};
