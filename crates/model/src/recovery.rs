//! Fault-frequency recovery model, §4.2.

/// IPC of an `r`-way *rewind-recovery* design at fault frequency `f`
/// (faults per instruction per copy) and rewind penalty `w` cycles.
///
/// Derivation (paper §4.2): one of the `r` copies of an instruction is
/// corrupted with frequency `r·f`, each costing `w` cycles, so
/// `CPI_r(f) = CPI_ff + r·f·w`, i.e.
/// `IPC_r(f) = IPC_ff / (1 + r·f·w·IPC_ff)`.
///
/// # Panics
///
/// Panics if `f` is not in `[0, 1]`, or `ipc_ff` or `w` is negative/NaN.
///
/// # Examples
///
/// ```
/// use ftsim_model::ipc_with_faults;
///
/// let ff = 0.5; // error-free IPC of the R=2 design (B normalized to 1)
/// assert_eq!(ipc_with_faults(ff, 2, 0.0, 20.0), ff);
/// // At f = 1/(2·w·IPC_ff), throughput halves... check the knee scaling:
/// let knee = 1.0 / (2.0 * 20.0 * ff);
/// let ipc = ipc_with_faults(ff, 2, knee, 20.0);
/// assert!((ipc - ff / 2.0).abs() < 1e-12);
/// ```
pub fn ipc_with_faults(ipc_ff: f64, r: u8, f: f64, w: f64) -> f64 {
    validate(ipc_ff, f, w);
    assert!(r >= 1, "redundancy degree must be at least 1");
    ipc_ff / (1.0 + f64::from(r) * f * w * ipc_ff)
}

/// Probability that a binomial(`n`, `p`) variable is at least `k`.
///
/// # Examples
///
/// ```
/// let p = ftsim_model::binomial_tail(3, 0.5, 2);
/// assert!((p - 0.5).abs() < 1e-12); // P(X>=2) for 3 fair coins
/// ```
pub fn binomial_tail(n: u8, p: f64, k: u8) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let n = u32::from(n);
    let k = u32::from(k);
    (k..=n)
        .map(|i| {
            let choose = (0..i).fold(1.0, |acc, j| acc * (n - j) as f64 / (j + 1) as f64);
            choose * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32)
        })
        .sum()
}

/// Per-instruction rewind probability of a majority-election design:
/// rewind is needed only when fewer than `threshold` copies remain clean,
/// i.e. when more than `r - threshold` copies are corrupted.
///
/// For the paper's `R = 3`, 2-of-3 design this is
/// `3f²(1-f) + f³` — quadratic in `f`, which is why the `R = 3` curve in
/// Figures 3 and 6 stays flat "until much higher frequencies".
///
/// # Examples
///
/// ```
/// use ftsim_model::rewind_probability_majority;
///
/// let f = 1e-3;
/// let p = rewind_probability_majority(3, 2, f);
/// let expect = 3.0 * f * f * (1.0 - f) + f * f * f;
/// assert!((p - expect).abs() < 1e-15);
/// ```
pub fn rewind_probability_majority(r: u8, threshold: u8, f: f64) -> f64 {
    assert!(threshold <= r, "threshold cannot exceed R");
    binomial_tail(r, f, r - threshold + 1)
}

/// IPC of an `r`-way *majority-election* design at fault frequency `f`.
///
/// Out-voted faults cost nothing; only an unelectable disagreement (no
/// `threshold` clean copies) pays the rewind `w`.
///
/// # Panics
///
/// As [`ipc_with_faults`], plus `threshold` must be a strict majority.
///
/// # Examples
///
/// ```
/// use ftsim_model::{ipc_with_faults, ipc_with_faults_majority};
///
/// // At moderate f, the R=3 majority design holds its error-free IPC
/// // while the R=2 rewind design has already begun to fall.
/// let f = 1e-3;
/// let r2 = ipc_with_faults(0.5, 2, f, 20.0);
/// let r3 = ipc_with_faults_majority(1.0 / 3.0, 3, 2, f, 20.0);
/// assert!(r2 < 0.5 * 0.999);
/// assert!(r3 > (1.0 / 3.0) * 0.9999);
/// ```
pub fn ipc_with_faults_majority(ipc_ff: f64, r: u8, threshold: u8, f: f64, w: f64) -> f64 {
    validate(ipc_ff, f, w);
    assert!(
        threshold > r / 2 && threshold <= r,
        "threshold must be a strict majority"
    );
    let p_rewind = rewind_probability_majority(r, threshold, f);
    ipc_ff / (1.0 + p_rewind * w * ipc_ff)
}

/// The fault frequency above which the first-order model stops being
/// trustworthy: the paper notes the equations "are not accurate for very
/// high error frequency (i.e. 1/f ≈ W) because rapid successions of
/// faults may only incur one rewind penalty". Returns that `f = 1 / w`.
///
/// # Examples
///
/// ```
/// assert_eq!(ftsim_model::validity_bound(20.0), 0.05);
/// ```
pub fn validity_bound(w: f64) -> f64 {
    assert!(w > 0.0, "rewind penalty must be positive");
    1.0 / w
}

fn validate(ipc_ff: f64, f: f64, w: f64) {
    assert!(
        ipc_ff >= 0.0 && ipc_ff.is_finite(),
        "error-free IPC must be non-negative"
    );
    assert!(
        (0.0..=1.0).contains(&f),
        "fault frequency is per instruction"
    );
    assert!(
        w >= 0.0 && w.is_finite(),
        "rewind penalty must be non-negative"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_rate_is_error_free() {
        assert_eq!(ipc_with_faults(0.5, 2, 0.0, 2000.0), 0.5);
        assert_eq!(ipc_with_faults_majority(0.33, 3, 2, 0.0, 2000.0), 0.33);
    }

    #[test]
    fn monotone_decreasing_in_f_and_w() {
        let mut last = f64::INFINITY;
        for exp in -7..=-1 {
            let f = 10f64.powi(exp);
            let ipc = ipc_with_faults(0.5, 2, f, 20.0);
            assert!(ipc < last);
            last = ipc;
        }
        assert!(ipc_with_faults(0.5, 2, 1e-3, 2000.0) < ipc_with_faults(0.5, 2, 1e-3, 20.0));
    }

    #[test]
    fn knee_location_scales_with_w() {
        // Figure 3 vs Figure 4: with W=2000 the knee sits ~100x earlier
        // than with W=20.
        let drop = |w: f64| {
            // Find the f where IPC falls to 90% of error-free.
            let mut f = 1e-9;
            while ipc_with_faults(0.5, 2, f, w) > 0.45 {
                f *= 1.1;
            }
            f
        };
        let ratio = drop(20.0) / drop(2000.0);
        assert!((90.0..110.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn binomial_tail_edges() {
        assert_eq!(binomial_tail(3, 0.0, 1), 0.0);
        assert_eq!(binomial_tail(3, 1.0, 3), 1.0);
        assert!((binomial_tail(3, 0.5, 0) - 1.0).abs() < 1e-12);
        // P(X >= 1) = 1 - (1-p)^3.
        let p = 0.01;
        let expect = 1.0 - (1.0 - p) * (1.0 - p) * (1.0 - p);
        assert!((binomial_tail(3, p, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn majority_rewind_probability_is_quadratic() {
        // Halving f should quarter the rewind probability (leading term).
        let p1 = rewind_probability_majority(3, 2, 1e-4);
        let p2 = rewind_probability_majority(3, 2, 5e-5);
        let ratio = p1 / p2;
        assert!((3.9..4.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn r3_rewind_only_design_is_linear_and_worse_than_r2_at_low_f() {
        // Figure 3's middle curve: R=3 with rewind recovery has lower
        // error-free IPC and the same linear degradation shape.
        let f = 1e-4;
        let r2 = ipc_with_faults(0.5, 2, f, 20.0);
        let r3 = ipc_with_faults(1.0 / 3.0, 3, f, 20.0);
        assert!(r3 < r2);
    }

    #[test]
    fn validity_bound_matches_paper_note() {
        assert_eq!(validity_bound(2000.0), 5e-4);
    }

    #[test]
    #[should_panic(expected = "strict majority")]
    fn non_majority_threshold_rejected() {
        let _ = ipc_with_faults_majority(0.33, 3, 1, 0.0, 20.0);
    }
}
