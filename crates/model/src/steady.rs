//! Steady-state (fault-free) throughput model, §4.1.

/// First-order IPC of an `r`-way redundant machine.
///
/// `ipc1` is the application's IPC on the unmodified datapath and
/// `bottleneck` is the paper's `B` — the throughput of the first resource
/// the application saturates (e.g. 4 integer ALUs). The redundant copies
/// consume idle capacity first; only demand beyond `B / r` is lost:
///
/// > "Ideally, until the processor resources become saturated, the extra
/// > data independent operations consume the previously unused capacities
/// > and incur little cost." (§4.1)
///
/// # Panics
///
/// Panics if `r == 0`, or if `ipc1` or `bottleneck` is negative or NaN.
///
/// # Examples
///
/// ```
/// use ftsim_model::steady_state_ipc;
///
/// // go/vpr-like: ILP-limited, IPC1 ≪ B/R — redundancy is nearly free.
/// assert_eq!(steady_state_ipc(1.0, 4.0, 2), 1.0);
/// // gcc-like: saturated, pays the full factor of R.
/// assert_eq!(steady_state_ipc(6.0, 4.0, 2), 2.0);
/// // Boundary case.
/// assert_eq!(steady_state_ipc(2.0, 4.0, 2), 2.0);
/// ```
pub fn steady_state_ipc(ipc1: f64, bottleneck: f64, r: u8) -> f64 {
    assert!(r >= 1, "redundancy degree must be at least 1");
    assert!(
        ipc1 >= 0.0 && bottleneck >= 0.0,
        "IPC and bottleneck must be non-negative"
    );
    ipc1.min(bottleneck / f64::from(r))
}

/// The fraction of baseline throughput retained at redundancy `r`,
/// `IPC_r / IPC_1` (1.0 when redundancy is free, `1/r` when saturated).
///
/// # Panics
///
/// Panics on invalid inputs (see [`steady_state_ipc`]) or `ipc1 == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(ftsim_model::redundant_throughput_factor(4.0, 4.0, 2), 0.5);
/// assert_eq!(ftsim_model::redundant_throughput_factor(1.0, 4.0, 2), 1.0);
/// ```
pub fn redundant_throughput_factor(ipc1: f64, bottleneck: f64, r: u8) -> f64 {
    assert!(ipc1 > 0.0, "baseline IPC must be positive");
    steady_state_ipc(ipc1, bottleneck, r) / ipc1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r1_is_identity() {
        for ipc in [0.0, 0.5, 3.7, 8.0] {
            assert_eq!(steady_state_ipc(ipc, 4.0, 1), ipc.min(4.0));
        }
    }

    #[test]
    fn monotone_decreasing_in_r() {
        let mut last = f64::INFINITY;
        for r in 1..=4 {
            let ipc = steady_state_ipc(3.0, 4.0, r);
            assert!(ipc <= last);
            last = ipc;
        }
        assert_eq!(steady_state_ipc(3.0, 4.0, 4), 1.0);
    }

    #[test]
    fn penalty_regimes_match_paper() {
        // §5.2: ammp/go/vpr have ILP-limited IPC1 — small penalty.
        let free = redundant_throughput_factor(1.2, 4.0, 2);
        assert!(free > 0.99);
        // Resource-limited benchmarks approach the full 50%.
        let paid = redundant_throughput_factor(4.0, 4.0, 2);
        assert_eq!(paid, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_r_rejected() {
        let _ = steady_state_ipc(1.0, 4.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ipc_rejected() {
        let _ = steady_state_ipc(-1.0, 4.0, 2);
    }
}
