//! Observability for the ftsim fabric: a metrics registry with
//! Prometheus-text exposition and a bounded structured trace journal.
//!
//! The simulator's determinism contract makes observability delicate:
//! records must be pure functions of cell coordinates, byte-identical
//! whether a cell ran cold, forked from a checkpoint, or raced another
//! process. Everything in this crate therefore lives **outside** the
//! simulation — counters, gauges, histograms and trace events observe
//! runs without feeding anything back into them. No RNG is consumed, no
//! [`Processor`](../ftsim_core/struct.Processor.html) field is added, and
//! every export path is best-effort: an injected I/O fault in an exporter
//! must never change sweep results.
//!
//! Two surfaces:
//!
//! * [`metrics`] — lock-cheap counters/gauges/histograms registered under
//!   stable names, rendered as Prometheus text by [`metrics::render`]
//!   (the daemon serves it at `GET /metrics`). A process-wide enable
//!   switch (`FTSIM_OBS=0`, or [`metrics::set_enabled`]) turns every
//!   recording path into an early return so overhead can be measured and
//!   bounded.
//! * [`trace`] — a bounded ring of timestamped span events (claim →
//!   baseline-warm → fork/cold → append → merge lifecycle, plus
//!   chaos-injection hits) with an optional sink the daemon points at an
//!   NDJSON journal under its state directory. Span IDs are derived from
//!   `(job, cell label)` with FNV-1a, so cooperating processes agree on
//!   them without coordination.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histo};
pub use trace::{span_id, TraceEvent};
