//! The process-wide metrics registry.
//!
//! Metrics are registered on first use under a stable name plus a small
//! label set and live for the life of the process. Handles are cheap
//! clones ([`Counter`]/[`Gauge`] wrap one `Arc<AtomicU64>`, [`Histo`] an
//! `Arc<Mutex<ftsim_stats::Histogram>>`), so hot paths resolve a metric
//! once and update it lock-free thereafter. [`render`] produces the
//! Prometheus text exposition format the daemon serves at `/metrics`.
//!
//! The registry is **observation only**: disabling it ([`set_enabled`],
//! or `FTSIM_OBS=0` in the environment) turns every update into an early
//! return without changing anything the simulation computes — the
//! `obs_overhead` row of `BENCH_throughput.json` prices exactly this
//! on/off difference.

use ftsim_stats::Histogram;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Tri-state enable flag: 0 = uninitialized (consult `FTSIM_OBS`),
/// 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether metric updates are recorded. Defaults to on; `FTSIM_OBS=0`
/// in the environment (read once) or [`set_enabled`]`(false)` disables.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("FTSIM_OBS").map_or(true, |v| v.trim() != "0");
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        state => state == 2,
    }
}

/// Overrides the enable flag for this process (benches and tests that
/// compare metrics-on vs metrics-off throughput in one run).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram of `u64` observations over fixed-width buckets.
#[derive(Debug, Clone)]
pub struct Histo {
    inner: Arc<Mutex<Histogram>>,
    width: u64,
}

impl Histo {
    /// Records one observation (no-op while the registry is disabled).
    pub fn record(&self, v: u64) {
        if enabled() {
            self.inner.lock().expect("histogram lock").record(v);
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.lock().expect("histogram lock").count()
    }
}

#[derive(Debug)]
enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histo(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: &'static str,
    /// Sorted `key="value"` pairs, pre-rendered (and escaped) at
    /// registration so exposition is a plain concatenation.
    labels: Vec<(&'static str, String)>,
    kind: Kind,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn labels_of(labels: &[(&'static str, &str)]) -> Vec<(&'static str, String)> {
    let mut out: Vec<(&'static str, String)> =
        labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

/// Returns the counter registered under `name` + `labels`, creating it
/// at zero on first use.
pub fn counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    let labels = labels_of(labels);
    let mut reg = registry().lock().expect("metrics registry lock");
    if let Some(e) = reg.iter().find(|e| e.name == name && e.labels == labels) {
        match &e.kind {
            Kind::Counter(c) => return c.clone(),
            other => panic!("metric {name} already registered as {}", other.type_name()),
        }
    }
    let c = Counter(Arc::new(AtomicU64::new(0)));
    reg.push(Entry {
        name,
        labels,
        kind: Kind::Counter(c.clone()),
    });
    c
}

/// Returns the gauge registered under `name` + `labels`, creating it at
/// zero on first use.
pub fn gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    let labels = labels_of(labels);
    let mut reg = registry().lock().expect("metrics registry lock");
    if let Some(e) = reg.iter().find(|e| e.name == name && e.labels == labels) {
        match &e.kind {
            Kind::Gauge(g) => return g.clone(),
            other => panic!("metric {name} already registered as {}", other.type_name()),
        }
    }
    let g = Gauge(Arc::new(AtomicU64::new(0)));
    reg.push(Entry {
        name,
        labels,
        kind: Kind::Gauge(g.clone()),
    });
    g
}

/// Returns the histogram registered under `name` + `labels`, creating
/// it on first use with `buckets` fixed-width buckets of `bucket_width`
/// each (later calls reuse the first geometry).
pub fn histogram(
    name: &'static str,
    labels: &[(&'static str, &str)],
    bucket_width: u64,
    buckets: usize,
) -> Histo {
    let labels = labels_of(labels);
    let mut reg = registry().lock().expect("metrics registry lock");
    if let Some(e) = reg.iter().find(|e| e.name == name && e.labels == labels) {
        match &e.kind {
            Kind::Histo(h) => return h.clone(),
            other => panic!("metric {name} already registered as {}", other.type_name()),
        }
    }
    let h = Histo {
        inner: Arc::new(Mutex::new(Histogram::new(bucket_width, buckets))),
        width: bucket_width.max(1),
    };
    reg.push(Entry {
        name,
        labels,
        kind: Kind::Histo(h.clone()),
    });
    h
}

/// Escapes a label value for the exposition format.
fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format: `# TYPE` lines once per metric name, then one sample line per
/// label set (histograms expand to cumulative `_bucket` series plus
/// `_sum` and `_count`). Works whether or not the registry is enabled —
/// a disabled registry just exposes frozen values.
pub fn render() -> String {
    let reg = registry().lock().expect("metrics registry lock");
    let mut out = String::new();
    let mut typed: Vec<&'static str> = Vec::new();
    // Entries are rendered grouped by name, in first-registration order
    // of the names, so scrapes are stable across processes with the same
    // code paths.
    let mut names: Vec<&'static str> = Vec::new();
    for e in reg.iter() {
        if !names.contains(&e.name) {
            names.push(e.name);
        }
    }
    for name in names {
        for e in reg.iter().filter(|e| e.name == name) {
            if !typed.contains(&e.name) {
                typed.push(e.name);
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.kind.type_name()));
            }
            match &e.kind {
                Kind::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        c.get()
                    ));
                }
                Kind::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        g.get()
                    ));
                }
                Kind::Histo(h) => {
                    let inner = h.inner.lock().expect("histogram lock");
                    let mut cumulative = 0u64;
                    for (lower, count) in inner.iter() {
                        cumulative += count;
                        let le = (lower + h.width).to_string();
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.name,
                            label_block(&e.labels, Some(("le", &le))),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        label_block(&e.labels, Some(("le", "+Inf"))),
                        inner.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        inner.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        inner.count()
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag is process-global, so tests that toggle it (or
    /// depend on it staying on) serialize through this lock.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_register_once_per_label_set() {
        let _g = guard();
        set_enabled(true);
        let a = counter("ftsim_test_total", &[("kind", "a")]);
        let b = counter("ftsim_test_total", &[("kind", "b")]);
        let a2 = counter("ftsim_test_total", &[("kind", "a")]);
        a.inc();
        a2.add(2);
        b.inc();
        assert_eq!(a.get(), 3, "same label set shares one cell");
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn disabled_registry_freezes_values() {
        let _g = guard();
        set_enabled(true);
        let c = counter("ftsim_test_disable_total", &[]);
        c.inc();
        set_enabled(false);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 1, "updates are dropped while disabled");
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn exposition_renders_types_values_and_buckets() {
        let _g = guard();
        set_enabled(true);
        let c = counter("ftsim_render_total", &[("site", "a\"b")]);
        c.add(7);
        let g = gauge("ftsim_render_gauge", &[]);
        g.set(3);
        let h = histogram("ftsim_render_ms", &[], 10, 4);
        h.record(5);
        h.record(15);
        h.record(1_000); // overflow bucket
        let text = render();
        assert!(text.contains("# TYPE ftsim_render_total counter"));
        assert!(text.contains("ftsim_render_total{site=\"a\\\"b\"} 7"));
        assert!(text.contains("# TYPE ftsim_render_gauge gauge"));
        assert!(text.contains("ftsim_render_gauge 3"));
        assert!(text.contains("ftsim_render_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("ftsim_render_ms_bucket{le=\"20\"} 2"));
        assert!(text.contains("ftsim_render_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ftsim_render_ms_count 3"));
    }

    #[test]
    fn labels_are_order_insensitive() {
        let _g = guard();
        set_enabled(true);
        let a = counter("ftsim_label_order_total", &[("x", "1"), ("y", "2")]);
        let b = counter("ftsim_label_order_total", &[("y", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }
}
