//! The structured trace journal: a bounded ring of span events.
//!
//! Every interesting step of a cell's life emits a [`TraceEvent`]:
//! `claim` when a process wins a family lease, `baseline` when a family's
//! fault-free prefix is simulated, `fork`/`cold` when a cell executes,
//! `append` when its record lands in `cells.csv`, `merge` when a job
//! finalizes, and `chaos` when the failpoint layer injects a fault. The
//! span ID ties one cell's events together **across processes**: it is
//! [`span_id`]`(job, cell label)`, an FNV-1a hash both sides of a stolen
//! lease compute identically without coordination.
//!
//! Events land in an in-process ring (bounded, oldest dropped) and are
//! forwarded to an optional [sink](set_sink) — the daemon points it at a
//! per-process NDJSON journal under `<state>/trace/` so `ftsimd trace`
//! and `GET /trace` can merge the view across the whole fabric. Emission
//! is best-effort by construction: the sink returns nothing, and a
//! failing sink must swallow its own errors.

use crate::metrics;
use ftsim_stats::JsonValue;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Ring capacity: enough for the recent history of a busy worker without
/// letting an unbounded sweep grow the process.
const RING_CAP: usize = 4_096;

/// One timestamped span event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Milliseconds since the Unix epoch at emission.
    pub ts_ms: u64,
    /// Span ID correlating one cell across processes (see [`span_id`]);
    /// 0 for events outside any cell (job-level merges, chaos hits).
    pub span: u64,
    /// Event kind: `claim`, `baseline`, `fork`, `cold`, `cell`,
    /// `append`, `merge`, `chaos`, ...
    pub kind: String,
    /// Job ID, empty when unknown at the emission site.
    pub job: String,
    /// Cell label or family slug the event concerns.
    pub label: String,
    /// Free-form detail (cycles simulated, bytes appended, chaos site).
    pub detail: String,
    /// Emitting fabric owner (`host:pid:seq`), empty outside the daemon.
    pub owner: String,
}

impl TraceEvent {
    /// Builds an event stamped with the current wall clock.
    pub fn new(kind: &str, job: &str, label: &str, detail: &str) -> Self {
        Self {
            ts_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            span: if job.is_empty() && label.is_empty() {
                0
            } else {
                span_id(job, label)
            },
            kind: kind.to_string(),
            job: job.to_string(),
            label: label.to_string(),
            detail: detail.to_string(),
            owner: String::new(),
        }
    }

    /// This event as a JSON object (`span` rendered as a hex string so
    /// IDs survive JSON readers that truncate to 53-bit floats).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("ts_ms".to_string(), JsonValue::U64(self.ts_ms)),
            (
                "span".to_string(),
                JsonValue::Str(format!("{:016x}", self.span)),
            ),
            ("kind".to_string(), JsonValue::Str(self.kind.clone())),
            ("job".to_string(), JsonValue::Str(self.job.clone())),
            ("label".to_string(), JsonValue::Str(self.label.clone())),
            ("detail".to_string(), JsonValue::Str(self.detail.clone())),
            ("owner".to_string(), JsonValue::Str(self.owner.clone())),
        ])
    }

    /// One compact NDJSON line (no trailing newline).
    pub fn render_line(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a line produced by [`TraceEvent::render_line`]. Returns
    /// `None` for damaged lines (a torn journal tail is not an error).
    pub fn parse_line(line: &str) -> Option<Self> {
        let v = JsonValue::parse(line.trim()).ok()?;
        let s = |k: &str| v.get(k).and_then(JsonValue::as_str).map(str::to_string);
        Some(Self {
            ts_ms: v.get("ts_ms").and_then(JsonValue::as_u64)?,
            span: u64::from_str_radix(&s("span")?, 16).ok()?,
            kind: s("kind")?,
            job: s("job")?,
            label: s("label")?,
            detail: s("detail")?,
            owner: s("owner")?,
        })
    }
}

/// The span ID of one grid cell: FNV-1a over `job`, a `/` separator and
/// `label`. Cooperating processes derive identical IDs for the same cell
/// of the same job, which is what lets `ftsimd trace` stitch a claim in
/// one process to the append in the process that stole its lease.
pub fn span_id(job: &str, label: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in job.bytes().chain([b'/']).chain(label.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

fn ring() -> &'static Mutex<VecDeque<TraceEvent>> {
    static RING: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(128)))
}

type Sink = Box<dyn Fn(&TraceEvent) + Send + Sync>;

/// The installed sink, shareable so [`emit`] can invoke it without
/// holding the slot lock (see the re-entrancy note in `emit`).
type SharedSink = std::sync::Arc<dyn Fn(&TraceEvent) + Send + Sync>;

fn sink_slot() -> &'static Mutex<Option<SharedSink>> {
    static SINK: OnceLock<Mutex<Option<SharedSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs (or replaces) the process-wide event sink. The daemon uses
/// this to journal events as NDJSON under its state directory; the sink
/// MUST swallow its own I/O errors — emission is best-effort and must
/// never perturb the run being observed.
pub fn set_sink(sink: Sink) {
    *sink_slot().lock().expect("trace sink lock") = Some(std::sync::Arc::from(sink));
}

/// Emits one event: stamps the process-wide owner (if one was set),
/// pushes it into the bounded ring and forwards it to the sink. A
/// disabled registry ([`metrics::enabled`]) drops events entirely.
pub fn emit(mut event: TraceEvent) {
    if !metrics::enabled() {
        return;
    }
    if event.owner.is_empty() {
        if let Some(owner) = owner_slot().lock().expect("owner lock").as_ref() {
            event.owner = owner.clone();
        }
    }
    {
        let mut ring = ring().lock().expect("trace ring lock");
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(event.clone());
    }
    // Clone the sink out and release the slot lock before invoking it:
    // a sink may itself emit (the chaos injection observer traces the
    // faults it injects into the sink's own failpoint), and a held lock
    // would deadlock that re-entrant emit.
    let sink = sink_slot().lock().expect("trace sink lock").clone();
    if let Some(sink) = sink {
        sink(&event);
    }
}

fn owner_slot() -> &'static Mutex<Option<String>> {
    static OWNER: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    OWNER.get_or_init(|| Mutex::new(None))
}

/// Sets the owner string stamped onto every subsequently emitted event
/// (the fabric's `host:pid:seq` identity).
pub fn set_owner(owner: &str) {
    *owner_slot().lock().expect("owner lock") = Some(owner.to_string());
}

/// The most recent `n` events from the in-process ring, oldest first.
pub fn recent(n: usize) -> Vec<TraceEvent> {
    let ring = ring().lock().expect("trace ring lock");
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_agree_across_call_sites() {
        let a = span_id("job-1", "gcc/SS-2/b4000/rate0/uniform/seed3");
        let b = span_id("job-1", "gcc/SS-2/b4000/rate0/uniform/seed3");
        assert_eq!(a, b);
        assert_ne!(a, span_id("job-2", "gcc/SS-2/b4000/rate0/uniform/seed3"));
        // The separator prevents (job, label) boundary ambiguity.
        assert_ne!(span_id("ab", "c"), span_id("a", "bc"));
    }

    #[test]
    fn events_round_trip_through_ndjson() {
        let mut e = TraceEvent::new(
            "fork",
            "job-9",
            "gcc/SS-2/b4000/rate200/uniform/seed3",
            "cycles=1234",
        );
        e.owner = "host:1:2".to_string();
        let line = e.render_line();
        assert!(!line.contains('\n'));
        assert_eq!(TraceEvent::parse_line(&line), Some(e));
        assert_eq!(TraceEvent::parse_line("{torn"), None);
    }

    #[test]
    fn ring_keeps_recent_events_and_stays_bounded() {
        metrics::set_enabled(true);
        for i in 0..(RING_CAP + 10) {
            emit(TraceEvent::new(
                "cell",
                "ring-job",
                &format!("cell-{i}"),
                "",
            ));
        }
        let ring = ring().lock().unwrap();
        assert!(ring.len() <= RING_CAP);
        drop(ring);
        let tail = recent(5);
        assert_eq!(tail.len(), 5);
        assert!(tail[4].label.ends_with(&format!("{}", RING_CAP + 9)));
    }
}
