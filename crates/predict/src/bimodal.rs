//! Bimodal (per-PC 2-bit counter) direction predictor.

use crate::{Counter2, DirectionPredictor};

/// The classic bimodal predictor: a table of 2-bit saturating counters
/// indexed by instruction address.
///
/// Table 1's combined predictor uses a 2K-entry bimodal component.
///
/// # Examples
///
/// ```
/// use ftsim_predict::{Bimodal, DirectionPredictor};
///
/// let mut p = Bimodal::new(2048);
/// p.update(0x40, false);
/// p.update(0x40, false);
/// assert!(!p.predict(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u64,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "bimodal table size must be a power of two"
        );
        Self {
            table: vec![Counter2::default(); entries],
            mask: (entries - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Drop the instruction-alignment bits like SimpleScalar does.
        ((pc >> 2) & self.mask) as usize
    }

    /// Number of counters.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_strong_bias() {
        let mut p = Bimodal::new(64);
        for _ in 0..3 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(0x100, true);
            p.update(0x104, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x104));
    }

    #[test]
    fn aliasing_wraps_modulo_table() {
        let mut p = Bimodal::new(16);
        // 16 entries * 4-byte stride = 64-byte wrap.
        for _ in 0..4 {
            p.update(0x0, false);
        }
        assert!(!p.predict(64)); // aliases to the same counter
    }

    #[test]
    fn initial_prediction_is_weak_taken() {
        let p = Bimodal::new(8);
        assert!(p.predict(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(100);
    }
}
