//! Branch target buffer.

use std::fmt;

/// BTB geometry (sets × associativity), SimpleScalar default 512×4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub assoc: usize,
}

impl Default for BtbConfig {
    fn default() -> Self {
        Self {
            sets: 512,
            assoc: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative branch target buffer mapping branch PCs to their last
/// observed taken targets.
///
/// Per the paper (§3.4), the BTB needs no ECC protection: a corrupted
/// target only causes a misfetch that the commit-time next-PC check (or
/// ordinary branch resolution) repairs.
///
/// # Examples
///
/// ```
/// use ftsim_predict::{Btb, BtbConfig};
///
/// let mut btb = Btb::new(BtbConfig::default());
/// assert_eq!(btb.lookup(0x1000), None);
/// btb.update(0x1000, 0x2000);
/// assert_eq!(btb.lookup(0x1000), Some(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<Entry>>,
    mask: u64,
    tick: u64,
    hits: u64,
    lookups: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two or `assoc` is zero.
    pub fn new(config: BtbConfig) -> Self {
        assert!(
            config.sets.is_power_of_two() && config.sets > 0,
            "BTB sets must be a power of two"
        );
        assert!(config.assoc > 0, "BTB associativity must be nonzero");
        Self {
            sets: vec![vec![Entry::default(); config.assoc]; config.sets],
            mask: (config.sets - 1) as u64,
            tick: 0,
            hits: 0,
            lookups: 0,
        }
    }

    fn set_and_tag(&self, pc: u64) -> (usize, u64) {
        let line = pc >> 2;
        ((line & self.mask) as usize, line >> self.mask.count_ones())
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.lookups += 1;
        self.tick += 1;
        let (set, tag) = self.set_and_tag(pc);
        let tick = self.tick;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.valid && e.tag == tag) {
            e.lru = tick;
            self.hits += 1;
            Some(e.target)
        } else {
            None
        }
    }

    /// Records (or refreshes) the taken target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(pc);
        let tick = self.tick;
        let set = &mut self.sets[set];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("assoc >= 1");
        *victim = Entry {
            tag,
            target,
            valid: true,
            lru: tick,
        };
    }

    /// `(hits, lookups)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.lookups)
    }
}

impl fmt::Display for Btb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (h, n) = self.stats();
        write!(f, "btb: {h}/{n} hits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(BtbConfig { sets: 4, assoc: 2 });
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, 0x900);
        assert_eq!(b.lookup(0x100), Some(0x900));
        assert_eq!(b.stats(), (1, 2));
    }

    #[test]
    fn update_refreshes_target() {
        let mut b = Btb::new(BtbConfig { sets: 4, assoc: 2 });
        b.update(0x100, 0x900);
        b.update(0x100, 0xa00);
        assert_eq!(b.lookup(0x100), Some(0xa00));
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut b = Btb::new(BtbConfig { sets: 1, assoc: 2 });
        b.update(0x0, 1);
        b.update(0x4, 2);
        b.lookup(0x0); // refresh A
        b.update(0x8, 3); // evicts B
        assert_eq!(b.lookup(0x0), Some(1));
        assert_eq!(b.lookup(0x4), None);
        assert_eq!(b.lookup(0x8), Some(3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_validated() {
        let _ = Btb::new(BtbConfig { sets: 3, assoc: 2 });
    }
}
