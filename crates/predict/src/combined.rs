//! Combined (tournament) predictor with a chooser table.

use crate::bimodal::Bimodal;
use crate::twolevel::{TwoLevel, TwoLevelConfig};
use crate::{Counter2, DirectionPredictor};

/// Configuration of the Table 1 combined predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Bimodal component entries (Table 1: 2K).
    pub bimodal_entries: usize,
    /// Two-level component geometry.
    pub two_level: TwoLevelConfig,
    /// Chooser (meta) table entries.
    pub meta_entries: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            bimodal_entries: 2048,
            two_level: TwoLevelConfig::default(),
            meta_entries: 2048,
        }
    }
}

/// A McFarling-style combined predictor: bimodal + two-level components and
/// a per-PC chooser of 2-bit counters trained toward whichever component
/// predicted correctly (only when they disagree), as in SimpleScalar's
/// `comb` predictor.
///
/// # Examples
///
/// ```
/// use ftsim_predict::{CombinedPredictor, DirectionPredictor, PredictorConfig};
///
/// let mut p = CombinedPredictor::new(PredictorConfig::default());
/// for i in 0..200 {
///     p.update(0x10, i % 2 == 0); // alternating: two-level wins
/// }
/// // The chooser has learned to trust the two-level component.
/// assert!(p.chooser_prefers_two_level(0x10));
/// ```
#[derive(Debug, Clone)]
pub struct CombinedPredictor {
    bimodal: Bimodal,
    two_level: TwoLevel,
    meta: Vec<Counter2>,
    meta_mask: u64,
}

impl CombinedPredictor {
    /// Creates a combined predictor.
    ///
    /// # Panics
    ///
    /// Panics if any component table size is invalid (see [`Bimodal::new`],
    /// [`TwoLevel::new`]).
    pub fn new(config: PredictorConfig) -> Self {
        assert!(
            config.meta_entries.is_power_of_two() && config.meta_entries > 0,
            "meta table size must be a power of two"
        );
        Self {
            bimodal: Bimodal::new(config.bimodal_entries),
            two_level: TwoLevel::new(config.two_level),
            meta: vec![Counter2::default(); config.meta_entries],
            meta_mask: (config.meta_entries - 1) as u64,
        }
    }

    fn meta_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.meta_mask) as usize
    }

    /// Whether the chooser currently selects the two-level component for
    /// the branch at `pc`. (Meta counter ≥ 2 means "trust two-level".)
    pub fn chooser_prefers_two_level(&self, pc: u64) -> bool {
        self.meta[self.meta_index(pc)].taken()
    }
}

impl DirectionPredictor for CombinedPredictor {
    fn predict(&self, pc: u64) -> bool {
        if self.chooser_prefers_two_level(pc) {
            self.two_level.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let bim = self.bimodal.predict(pc);
        let two = self.two_level.predict(pc);
        // Train the chooser only on disagreement, toward the correct one.
        if bim != two {
            let i = self.meta_index(pc);
            self.meta[i].train(two == taken);
        }
        self.bimodal.update(pc, taken);
        self.two_level.update(pc, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_high_accuracy() {
        let mut p = CombinedPredictor::new(PredictorConfig::default());
        for _ in 0..8 {
            p.update(0x20, true);
        }
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(0x20) {
                correct += 1;
            }
            p.update(0x20, true);
        }
        assert_eq!(correct, 100);
    }

    #[test]
    fn alternating_branch_converges_to_two_level() {
        let mut p = CombinedPredictor::new(PredictorConfig::default());
        for i in 0..300 {
            p.update(0x30, i % 2 == 0);
        }
        assert!(p.chooser_prefers_two_level(0x30));
        let mut correct = 0;
        for i in 300..400 {
            let expect = i % 2 == 0;
            if p.predict(0x30) == expect {
                correct += 1;
            }
            p.update(0x30, expect);
        }
        assert!(correct >= 95, "only {correct}/100 after convergence");
    }

    #[test]
    fn chooser_stays_put_when_components_agree() {
        let mut p = CombinedPredictor::new(PredictorConfig::default());
        let before = p.chooser_prefers_two_level(0x40);
        // Both components start weak-taken and agree on `taken`.
        p.update(0x40, true);
        assert_eq!(p.chooser_prefers_two_level(0x40), before);
    }

    #[test]
    fn default_matches_table1() {
        let c = PredictorConfig::default();
        assert_eq!(c.bimodal_entries, 2048);
        assert_eq!(c.two_level.l2_entries, 1024);
        assert_eq!(c.two_level.hist_bits, 10);
    }
}
