//! Branch prediction substrate for `ftsim`.
//!
//! Implements the predictor described in the paper's Table 1:
//!
//! > *Combined predictor that selects between a 2K bimodal and a 2-level
//! > predictor. The 2-level predictor consists of a 2-entry L1 (10-bit
//! > history), an 1024-entry L2, and 1-bit xor. One prediction per cycle.*
//!
//! plus the supporting structures a superscalar front end needs: a branch
//! target buffer ([`Btb`]) and a return-address stack ([`Ras`]).
//!
//! Direction predictors implement [`DirectionPredictor`]; the composite
//! [`CombinedPredictor`] follows SimpleScalar's chooser design (a table of
//! 2-bit meta counters trained toward whichever component was right).
//!
//! The paper notes BTB arrays need *not* be ECC-protected (§3.4): a
//! corrupted prediction is performance-harmful but never correctness-
//! harmful, because every retiring instruction's PC is checked against the
//! committed next-PC chain. The same is true of every structure in this
//! crate — which is why the fault injector treats them as out of scope.
//!
//! # Examples
//!
//! ```
//! use ftsim_predict::{Bimodal, DirectionPredictor};
//!
//! let mut p = Bimodal::new(2048);
//! for _ in 0..4 {
//!     p.update(0x1000, true);
//! }
//! assert!(p.predict(0x1000)); // learned taken
//! ```

#![warn(missing_docs)]

mod bimodal;
mod btb;
mod combined;
mod ras;
mod twolevel;

pub use bimodal::Bimodal;
pub use btb::{Btb, BtbConfig};
pub use combined::{CombinedPredictor, PredictorConfig};
pub use ras::Ras;
pub use twolevel::{TwoLevel, TwoLevelConfig};

/// A conditional-branch direction predictor.
///
/// `predict` must not mutate predictor state (prediction happens at fetch);
/// `update` trains the predictor with the resolved outcome (the simulator
/// calls it at commit, matching `sim-outorder`).
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;

    /// Trains the predictor with the actual outcome of the branch at `pc`.
    fn update(&mut self, pc: u64, taken: bool);
}

/// A saturating 2-bit counter, the building block of every table in this
/// crate (strongly/weakly not-taken = 0/1, weakly/strongly taken = 2/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter2(u8);

impl Counter2 {
    /// Weakly-taken initial state (SimpleScalar initializes to 2).
    pub const WEAK_TAKEN: Counter2 = Counter2(2);

    /// Weakly-not-taken state.
    pub const WEAK_NOT_TAKEN: Counter2 = Counter2(1);

    /// Predicted direction.
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Trains toward `taken`, saturating at 0 and 3.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw state in `0..=3`.
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl Default for Counter2 {
    fn default() -> Self {
        Self::WEAK_TAKEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ends() {
        let mut c = Counter2::WEAK_TAKEN;
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.raw(), 3);
        assert!(c.taken());
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.raw(), 0);
        assert!(!c.taken());
    }

    #[test]
    fn hysteresis_needs_two_flips() {
        let mut c = Counter2::WEAK_TAKEN;
        c.train(true); // strong taken
        c.train(false); // weak taken — still predicts taken
        assert!(c.taken());
        c.train(false);
        assert!(!c.taken());
    }

    #[test]
    fn default_is_weak_taken() {
        assert_eq!(Counter2::default(), Counter2::WEAK_TAKEN);
    }
}
