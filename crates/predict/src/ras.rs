//! Return address stack.

/// A fixed-depth circular return-address stack.
///
/// Calls (`jal`/`jalr`) push their return address at fetch; returns (`jr`)
/// pop a predicted target. Overflow silently wraps (overwriting the oldest
/// entry) and underflow returns `None`, both standard hardware behaviours —
/// wrong predictions are repaired by normal branch resolution.
///
/// # Examples
///
/// ```
/// use ftsim_predict::Ras;
///
/// let mut ras = Ras::new(8);
/// ras.push(0x1004);
/// ras.push(0x2008);
/// assert_eq!(ras.pop(), Some(0x2008));
/// assert_eq!(ras.pop(), Some(0x1004));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Creates an empty stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be nonzero");
        Self {
            stack: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (wraps over the oldest entry when full).
    pub fn push(&mut self, addr: u64) {
        self.stack[self.top] = addr;
        self.top = (self.top + 1) % self.stack.len();
        self.depth = (self.depth + 1).min(self.stack.len());
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        self.depth -= 1;
        Some(self.stack[self.top])
    }

    /// The address `pop` would return, without popping.
    pub fn peek(&self) -> Option<u64> {
        if self.depth == 0 {
            None
        } else {
            let i = (self.top + self.stack.len() - 1) % self.stack.len();
            Some(self.stack[i])
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.depth
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Clears all entries (used on full pipeline rewind).
    pub fn clear(&mut self) {
        self.top = 0;
        self.depth = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(4);
        for a in [1u64, 2, 3] {
            r.push(a);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert!(r.is_empty());
    }

    #[test]
    fn overflow_wraps_over_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None); // 1 was lost
    }

    #[test]
    fn peek_does_not_pop() {
        let mut r = Ras::new(4);
        r.push(42);
        assert_eq!(r.peek(), Some(42));
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop(), Some(42));
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn clear_resets() {
        let mut r = Ras::new(4);
        r.push(1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = Ras::new(0);
    }
}
