//! Two-level adaptive direction predictor (SimpleScalar `2lev` style).

use crate::{Counter2, DirectionPredictor};

/// Geometry of a [`TwoLevel`] predictor, mirroring SimpleScalar's
/// `-bpred:2lev <l1size> <l2size> <hist_size> <xor>` parameters.
///
/// Table 1's configuration is `l1 = 2`, `hist = 10`, `l2 = 1024`, `xor = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelConfig {
    /// Entries in the first-level history table.
    pub l1_entries: usize,
    /// History bits per first-level entry.
    pub hist_bits: u32,
    /// Entries (2-bit counters) in the second-level pattern table.
    pub l2_entries: usize,
    /// Whether the history is XORed with the branch address to index L2
    /// (gshare-style) rather than concatenated.
    pub xor: bool,
}

impl Default for TwoLevelConfig {
    /// The paper's Table 1 configuration.
    fn default() -> Self {
        Self {
            l1_entries: 2,
            hist_bits: 10,
            l2_entries: 1024,
            xor: true,
        }
    }
}

/// Two-level adaptive predictor: per-set branch history registers indexing
/// a shared pattern table of 2-bit counters.
///
/// History is updated at [`DirectionPredictor::update`] time (i.e. commit),
/// matching `sim-outorder`'s behaviour — lookups between a branch's fetch
/// and its commit see slightly stale history, which is part of the modeled
/// performance.
///
/// # Examples
///
/// ```
/// use ftsim_predict::{DirectionPredictor, TwoLevel, TwoLevelConfig};
///
/// let mut p = TwoLevel::new(TwoLevelConfig::default());
/// // Train an alternating pattern; a 2-level predictor learns it exactly.
/// for i in 0..64 {
///     p.update(0x40, i % 2 == 0);
/// }
/// assert_eq!(p.predict(0x40), true);  // history says "last was odd"
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevel {
    config: TwoLevelConfig,
    histories: Vec<u64>,
    pattern: Vec<Counter2>,
    l1_mask: u64,
    l2_mask: u64,
    hist_mask: u64,
}

impl TwoLevel {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if either table size is zero or not a power of two, or if
    /// `hist_bits` is 0 or > 30.
    pub fn new(config: TwoLevelConfig) -> Self {
        assert!(
            config.l1_entries.is_power_of_two() && config.l1_entries > 0,
            "L1 size must be a power of two"
        );
        assert!(
            config.l2_entries.is_power_of_two() && config.l2_entries > 0,
            "L2 size must be a power of two"
        );
        assert!(
            (1..=30).contains(&config.hist_bits),
            "history bits must be in 1..=30"
        );
        Self {
            histories: vec![0; config.l1_entries],
            pattern: vec![Counter2::default(); config.l2_entries],
            l1_mask: (config.l1_entries - 1) as u64,
            l2_mask: (config.l2_entries - 1) as u64,
            hist_mask: (1u64 << config.hist_bits) - 1,
            config,
        }
    }

    /// The predictor's geometry.
    pub fn config(&self) -> TwoLevelConfig {
        self.config
    }

    fn l1_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.l1_mask) as usize
    }

    fn l2_index(&self, pc: u64) -> usize {
        let hist = self.histories[self.l1_index(pc)];
        let idx = if self.config.xor {
            hist ^ (pc >> 2)
        } else {
            hist | ((pc >> 2) << self.config.hist_bits)
        };
        (idx & self.l2_mask) as usize
    }
}

impl DirectionPredictor for TwoLevel {
    fn predict(&self, pc: u64) -> bool {
        self.pattern[self.l2_index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let l2 = self.l2_index(pc);
        self.pattern[l2].train(taken);
        let l1 = self.l1_index(pc);
        self.histories[l1] = ((self.histories[l1] << 1) | u64::from(taken)) & self.hist_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(pattern: &[bool], rounds: usize) -> TwoLevel {
        let mut p = TwoLevel::new(TwoLevelConfig::default());
        for _ in 0..rounds {
            for &t in pattern {
                p.update(0x80, t);
            }
        }
        p
    }

    #[test]
    fn learns_alternating_pattern_perfectly() {
        let mut p = trained(&[true, false], 32);
        // After training, prediction must match the pattern exactly.
        let mut correct = 0;
        for i in 0..20 {
            let expect = i % 2 == 0;
            if p.predict(0x80) == expect {
                correct += 1;
            }
            p.update(0x80, expect);
        }
        assert_eq!(correct, 20);
    }

    #[test]
    fn learns_period_four_pattern() {
        let pat = [true, true, false, false];
        let mut p = trained(&pat, 64);
        let mut correct = 0;
        for i in 0..40 {
            let expect = pat[i % 4];
            if p.predict(0x80) == expect {
                correct += 1;
            }
            p.update(0x80, expect);
        }
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn history_length_bounds_learnable_period() {
        // A 10-bit history cannot distinguish patterns longer than 2^10, but
        // must handle period 8 easily.
        let pat: Vec<bool> = (0..8).map(|i| i < 3).collect();
        let mut p = trained(&pat, 128);
        let mut correct = 0;
        for i in 0..80 {
            let expect = pat[i % 8];
            if p.predict(0x80) == expect {
                correct += 1;
            }
            p.update(0x80, expect);
        }
        assert!(correct >= 76, "only {correct}/80 correct");
    }

    #[test]
    fn xor_and_concat_modes_differ() {
        let xor = TwoLevel::new(TwoLevelConfig {
            xor: true,
            ..TwoLevelConfig::default()
        });
        let cat = TwoLevel::new(TwoLevelConfig {
            xor: false,
            ..TwoLevelConfig::default()
        });
        // Same state, different indexing function.
        assert_ne!(
            xor.l2_index(0xfff0),
            cat.l2_index(0xfff0),
            "indexing modes should disagree for high PCs"
        );
    }

    #[test]
    fn table1_default_geometry() {
        let c = TwoLevelConfig::default();
        assert_eq!(
            (c.l1_entries, c.hist_bits, c.l2_entries, c.xor),
            (2, 10, 1024, true)
        );
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn history_bits_validated() {
        let _ = TwoLevel::new(TwoLevelConfig {
            hist_bits: 0,
            ..TwoLevelConfig::default()
        });
    }
}
