//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of criterion's API the `ftsim` workspace uses — benchmark groups,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], element throughput, and the
//! [`criterion_group!`]/[`criterion_main!`] entry points — backed by a
//! simple wall-clock runner that reports the mean, minimum and maximum
//! time per iteration (no statistical analysis, plots or baselines).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
            iters_per_sample: 1,
        }
    }

    /// Times `routine`, running it several times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("nonempty");
    let max = *samples.iter().max().expect("nonempty");
    let mut line = format!(
        "{id:<40} mean {:>12} [min {}, max {}]",
        format_duration(mean),
        format_duration(min),
        format_duration(max)
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            let (n, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            line.push_str(&format!("  {:.3e} {unit}", n as f64 / secs));
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver (upstream: `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim runs a fixed sample count.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id.into(), &b.samples, None);
    }
}

/// A named set of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into()),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op in the shim; upstream finalizes reports here).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one entry name, optionally configured.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| {
            b.iter(|| (0..10u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 10],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn bench_function_on_criterion_directly() {
        Criterion::default()
            .sample_size(2)
            .bench_function("direct", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
