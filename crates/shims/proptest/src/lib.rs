//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this crate implements —
//! under the upstream paths (`proptest::prelude::*`, `prop::collection`,
//! `prop::sample`) — the subset of proptest the `ftsim` workspace uses:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(x in strategy, ...)`
//!   case functions;
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::boxed`],
//!   implemented for integer ranges and strategy tuples;
//! * [`any`], [`prop::collection::vec`], [`prop::sample::select`] and the
//!   weighted [`prop_oneof!`] union;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`] and
//!   [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed seed derived
//! from the test name (fully deterministic across runs), and failing cases
//! are **not shrunk** — the failing input is printed as-is.

#![warn(missing_docs)]

use std::ops::Range;

/// The deterministic strategy RNG (the workspace's xoshiro shim
/// algorithm, inlined so this crate stays dependency-free).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        self.next_u64() % n
    }
}

/// How a single generated case resolved.
pub type TestCaseResult = Result<(), String>;

/// Runner configuration (upstream: `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of test values (no shrinking in this shim).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.as_ref().gen_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Full-range values of primitive types (upstream: `any::<T>()`).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Creates a union; weights must not all be zero.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or the weights sum to zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Upstream's `prop::` namespace.
pub mod prop {
    /// Collection strategies (upstream: `prop::collection`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Vectors of `element` values with length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                assert!(self.len.start < self.len.end, "empty length range");
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.gen_value(rng)).collect()
            }
        }
    }

    /// Sampling strategies (upstream: `prop::sample`).
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform selection from a non-empty vector.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs options");
            Select { options }
        }

        /// Strategy returned by [`select`].
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn gen_value(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Drives one property test: `cases` inputs from a name-derived seed.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) on the first case whose body
/// returns `Err`, reporting the case index and message.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // FNV-1a over the test name: deterministic, stable across runs.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    for i in 0..config.cases {
        if let Err(msg) = case(&mut rng) {
            panic!("proptest case {i}/{} failed: {msg}", config.cases);
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), __rng);)+
                    let __case_inputs = format!("{:?}", ($(&$arg,)+));
                    let mut __case = || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case().map_err(|e| format!("{e}\n  inputs: {__case_inputs}"))
                });
            }
        )*
    };
}

/// Weighted strategy union: `prop_oneof![3 => a, 1 => b]` (weights optional).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)), )+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)), )+
        ])
    };
}

/// Asserts inside a property body, failing the case (not aborting) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)*),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No shrinking or rejection accounting in the shim: an assumed-
            // away case simply passes.
            return Ok(());
        }
    };
}

/// Everything a test file needs (upstream: `proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..32, y in -64i32..64) {
            prop_assert!(x < 32);
            prop_assert!((-64..64).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..10, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            3 => (0u32..10).prop_map(|x| x * 2),
            1 => (100u32..110).prop_map(|x| x),
        ]) {
            prop_assert!(v % 2 == 0 && v < 20 || (100..110).contains(&v));
        }

        #[test]
        fn select_picks_members(x in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!([1u8, 3, 5].contains(&x));
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        crate::run_cases(&ProptestConfig::with_cases(8), "doomed", |_rng| {
            Err("boom".to_string())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            crate::run_cases(&ProptestConfig::with_cases(16), "det", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
