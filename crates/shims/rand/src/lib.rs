//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this crate provides —
//! under the upstream module paths (`rand::rngs::SmallRng`, `rand::Rng`,
//! `rand::SeedableRng`) — exactly the API surface the `ftsim` workspace
//! uses:
//!
//! * [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for `u64`, `u32`, `f64` and `bool`;
//! * [`Rng::gen_range`] over half-open integer ranges.
//!
//! The generator is xoshiro256++ with SplitMix64 seed expansion (the same
//! family upstream `SmallRng` uses on 64-bit targets). Streams are
//! deterministic per seed, which is all the simulator requires; this is
//! **not** a cryptographic generator.

#![warn(missing_docs)]

/// Seeding interface: the subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The generator's native 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from the "standard" distribution:
    /// full-range integers, `f64` uniform in `[0, 1)`, fair `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types samplable by [`Rng::gen_range`].
pub trait UniformInt: Sized {
    /// Draws uniformly from `range`.
    fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Small, fast generators (upstream: `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the small-footprint generator family upstream
    /// `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let stream = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(0..4u32);
            assert!(x < 4);
            let y = r.gen_range(-64i32..64);
            assert!((-64..64).contains(&y));
            let z = r.gen_range(5usize..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(5);
        let _ = r.gen_range(3..3u32);
    }
}
