//! Binomial proportion confidence intervals.

/// The Wilson score interval for a binomial proportion: given `successes`
/// out of `trials` and a normal quantile `z` (1.96 for 95% confidence),
/// returns `(low, high)` bounds on the underlying probability.
///
/// Wilson is the standard choice for fault-injection sensitivity tables:
/// unlike the naive normal approximation it stays inside `[0, 1]` and
/// behaves sensibly at 0 or `n` successes and at small `n` — exactly the
/// regime of rare SDC events. With zero trials the interval is the
/// uninformative `(0, 1)`.
///
/// # Examples
///
/// ```
/// use ftsim_stats::wilson_interval;
///
/// let (lo, hi) = wilson_interval(8, 10, 1.96);
/// assert!(lo > 0.4 && lo < 0.8);
/// assert!(hi > 0.8 && hi < 1.0);
/// assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - margin).max(0.0), (center + margin).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_the_point_estimate() {
        for (k, n) in [(0u64, 10u64), (1, 10), (5, 10), (10, 10), (3, 1000)] {
            let p = if n == 0 { 0.0 } else { k as f64 / n as f64 };
            let (lo, hi) = wilson_interval(k, n, 1.96);
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{k}/{n}: [{lo},{hi}]");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn extremes_stay_informative() {
        // 0/n pins the lower bound to 0 but keeps a nonzero upper bound
        // (the "rule of three" regime); n/n mirrors it.
        let (lo, hi) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15);
        let (lo, hi) = wilson_interval(50, 50, 1.96);
        assert!(lo > 0.85 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn tightens_with_more_trials() {
        let (lo1, hi1) = wilson_interval(5, 10, 1.96);
        let (lo2, hi2) = wilson_interval(500, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn known_value_matches_reference() {
        // Wilson 95% for 8/10 is approximately (0.490, 0.943).
        let (lo, hi) = wilson_interval(8, 10, 1.96);
        assert!((lo - 0.4901).abs() < 5e-3, "{lo}");
        assert!((hi - 0.9433).abs() < 5e-3, "{hi}");
    }
}
