//! Event counters and derived ratios.

use std::fmt;

/// A monotonically increasing event counter.
///
/// Thin wrapper over `u64` that makes simulator statistics self-describing
/// and prevents accidental arithmetic between unrelated quantities.
///
/// # Examples
///
/// ```
/// use ftsim_stats::Counter;
///
/// let mut retired = Counter::new();
/// retired.add(8);
/// retired.inc();
/// assert_eq!(retired.get(), 9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self(0)
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Returns this count divided by `denom` (0 if the denominator is zero).
    pub fn per(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Counter {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A numerator/denominator pair reported as a rate.
///
/// Used for hit rates, prediction accuracy, and similar quantities where the
/// report must show both the fraction and the raw event counts.
///
/// # Examples
///
/// ```
/// use ftsim_stats::Ratio;
///
/// let mut hits = Ratio::new();
/// hits.record(true);
/// hits.record(false);
/// hits.record(true);
/// assert!((hits.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates an empty ratio (rate reported as 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event; `success` increments the numerator.
    pub fn record(&mut self, success: bool) {
        self.den += 1;
        if success {
            self.num += 1;
        }
    }

    /// Numerator (successes).
    pub fn numerator(self) -> u64 {
        self.num
    }

    /// Denominator (total events).
    pub fn denominator(self) -> u64 {
        self.den
    }

    /// Success rate in `[0, 1]`; zero when no events were recorded.
    pub fn rate(self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            self.num as f64 / self.den as f64
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.2}%)", self.num, self.den, self.rate() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.per(10), 0.5);
        assert_eq!(c.per(0), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_display_and_from() {
        let c = Counter::from(42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::new().rate(), 0.0);
    }

    #[test]
    fn ratio_counts() {
        let mut r = Ratio::new();
        for i in 0..10 {
            r.record(i % 2 == 0);
        }
        assert_eq!(r.numerator(), 5);
        assert_eq!(r.denominator(), 10);
        assert_eq!(r.rate(), 0.5);
        assert!(r.to_string().contains("5/10"));
    }
}
