//! RFC-4180-style CSV writing and parsing.
//!
//! The experiment harness exports run records as CSV without external
//! dependencies; this module provides quoting-aware escaping, row
//! joining, a parser that inverts them exactly (so record → CSV →
//! record round trips are testable), and an append-safe incremental
//! writer ([`AppendWriter`]) used by the `ftsimd` sweep daemon to stream
//! results to disk so a crashed run can resume from whatever rows made
//! it out.

use std::fs::{File, OpenOptions};
use std::io::Read as _;
use std::path::Path;

/// Quotes a single cell when it contains a comma, quote or newline.
pub fn escape(cell: &str) -> String {
    if cell.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Joins cells into one CSV row (no trailing newline).
pub fn join_row<I, S>(cells: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    cells
        .into_iter()
        .map(|c| escape(c.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// CSV parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parses a CSV document into rows of cells, honouring quoted cells
/// (including embedded newlines, commas and doubled quotes).
///
/// # Errors
///
/// [`CsvError`] on an unterminated quoted cell or a stray quote.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    // Whether the current (possibly empty) cell has been started; used to
    // avoid emitting a phantom row for a trailing newline.
    let mut in_row = false;

    while let Some(c) = chars.next() {
        match c {
            // A quote starts a quoted cell only at the very beginning of
            // the cell.
            '"' if cell.is_empty() => {
                // Quoted cell: consume until the closing quote.
                in_row = true;
                loop {
                    match chars.next() {
                        None => {
                            return Err(CsvError {
                                line,
                                message: "unterminated quoted cell".to_string(),
                            })
                        }
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cell.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => {
                            if c == '\n' {
                                line += 1;
                            }
                            cell.push(c);
                        }
                    }
                }
                // RFC 4180: a closing quote must be followed by a
                // delimiter or end the document; silently merging
                // trailing characters would hide corruption.
                if !matches!(chars.peek(), None | Some(',' | '\n' | '\r')) {
                    return Err(CsvError {
                        line,
                        message: "unexpected character after closing quote".to_string(),
                    });
                }
            }
            '"' => {
                return Err(CsvError {
                    line,
                    message: "quote inside unquoted cell".to_string(),
                })
            }
            ',' => {
                in_row = true;
                row.push(std::mem::take(&mut cell));
            }
            '\r' => {
                // Swallow the CR of a CRLF; a bare CR ends the row too.
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                line += 1;
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                in_row = false;
            }
            '\n' => {
                line += 1;
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                in_row = false;
            }
            c => {
                in_row = true;
                cell.push(c);
            }
        }
    }
    if in_row || !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

/// An append-only CSV writer built for crash safety: every row is
/// written as **one** `write` call (row + newline), flushed, and synced
/// to the device before [`AppendWriter::append_row`] returns. A process
/// killed between rows therefore loses at most the row in flight, and a
/// reader tolerant of one partial trailing line (the harness's
/// `from_csv_tolerant`) recovers everything else.
///
/// Opening an existing file first repairs any torn tail — the signature
/// of a writer that died mid-row — by **truncating** back to the largest
/// newline-terminated prefix that parses as CSV. Truncation (rather than
/// sealing the fragment with a newline) matters: a sealed fragment would
/// become an *interior* garbage line once fresh rows land after it, and
/// tail-tolerant readers like the harness's `from_csv_tolerant` — which
/// trim from the end until the document parses — would then silently
/// drop every row behind it. Cutting the fragment keeps the file
/// all-whole-rows at every open; the row it carried is simply re-run.
/// A tail torn mid-way through a multi-byte UTF-8 character or inside a
/// quoted multi-line cell is cut the same way, back past the damage.
///
/// Every filesystem operation routes through the
/// [`ftsim_chaos`](ftsim_chaos::IoEnv) failpoint layer at sites
/// `csv.open` (directory creation, open, read-back, tail repair) and
/// `csv.append` (each fsynced row write), so crash-matrix and torn-write
/// tests can target the exact primitive.
#[derive(Debug)]
pub struct AppendWriter {
    file: File,
}

/// Failpoint site covering [`AppendWriter::open`].
pub const FP_CSV_OPEN: &str = "csv.open";

/// Failpoint site covering each [`AppendWriter::append_row`].
pub const FP_CSV_APPEND: &str = "csv.append";

impl AppendWriter {
    /// Opens `path` for appending, creating parent directories and the
    /// file as needed, and returns the writer together with the file's
    /// pre-existing contents (so callers resuming a run read prior rows
    /// with the same open, not a second racy one). A new or empty file
    /// gets `header` (plus a newline) written first; a torn trailing
    /// fragment is truncated away as described on [`AppendWriter`].
    ///
    /// # Errors
    ///
    /// Any I/O error creating directories, opening, reading or repairing
    /// the file — including faults injected at the `csv.open` site.
    pub fn open(path: impl AsRef<Path>, header: &str) -> std::io::Result<(Self, String)> {
        let env = ftsim_chaos::io();
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                env.create_dir_all(FP_CSV_OPEN, dir)?;
            }
        }
        env.gate(FP_CSV_OPEN)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let keep = repaired_len(&raw);
        if keep < raw.len() {
            file.set_len(keep as u64)?;
            raw.truncate(keep);
        }
        // Decode lossily as a last line of defence; after the repair the
        // surviving prefix is whole rows, which the writer only ever
        // produced from valid UTF-8.
        let existing = String::from_utf8_lossy(&raw).into_owned();
        let mut writer = Self { file };
        if existing.is_empty() {
            writer.write_line(header)?;
        }
        Ok((writer, existing))
    }

    /// Appends one row (no trailing newline in `row`; quoting is the
    /// caller's business, e.g. via [`join_row`]) and syncs it to the
    /// device before returning.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or syncing — including faults injected at
    /// the `csv.append` site (an injected torn write persists a prefix of
    /// the row, exactly like a crash mid-append).
    pub fn append_row(&mut self, row: &str) -> std::io::Result<()> {
        self.write_line(row)
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        // One write call for line + newline: on a local filesystem an
        // append of this size lands atomically in practice, and the
        // sync bounds the loss window to the row in flight.
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        ftsim_chaos::io().append_sync(FP_CSV_APPEND, &mut self.file, buf.as_bytes())
    }
}

/// Byte length of the largest newline-terminated, CSV-parseable prefix
/// of `raw` — the repair boundary used by [`AppendWriter::open`].
///
/// A crash leaves at most a strict prefix of one `row\n` append after a
/// well-formed document, so trimming trailing lines until the remainder
/// both ends in a newline and parses (a fragment cut just past an
/// embedded newline of a quoted multi-line cell satisfies the first test
/// but not the second) always lands back on the pre-append row boundary.
fn repaired_len(raw: &[u8]) -> usize {
    let mut end = raw.len();
    loop {
        if end == 0 {
            return 0;
        }
        if raw[end - 1] == b'\n' && parse(&String::from_utf8_lossy(&raw[..end])).is_ok() {
            return end;
        }
        // Cut the trailing line: everything after the last newline that
        // precedes `end` (excluding a trailing newline that merely ends
        // the unparseable fragment).
        end = match raw[..end - 1].iter().rposition(|&b| b == b'\n') {
            Some(nl) => nl + 1,
            None => 0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cells_untouched() {
        assert_eq!(escape("gcc"), "gcc");
        assert_eq!(join_row(["a", "b", "c"]), "a,b,c");
    }

    #[test]
    fn special_cells_quoted() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn parse_inverts_join() {
        let cells = vec![
            "plain".to_string(),
            "with,comma".to_string(),
            "with \"quotes\"".to_string(),
            "multi\nline".to_string(),
            String::new(),
        ];
        let row = join_row(&cells);
        let parsed = parse(&row).unwrap();
        assert_eq!(parsed, vec![cells]);
    }

    #[test]
    fn multiple_rows_and_trailing_newline() {
        let text = "a,b\nc,d\n";
        assert_eq!(
            parse(text).unwrap(),
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string(), "d".to_string()],
            ]
        );
    }

    #[test]
    fn crlf_rows() {
        let text = "a,b\r\nc,d\r\n";
        assert_eq!(parse(text).unwrap().len(), 2);
    }

    #[test]
    fn empty_cells_preserved() {
        assert_eq!(
            parse("a,,c\n").unwrap(),
            vec![vec!["a".to_string(), String::new(), "c".to_string()]]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("\"unterminated").is_err());
        let err = parse("bad\"quote\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        // Trailing characters after a closing quote are corruption, not
        // cell content.
        assert!(parse("\"SS-2\"x,1\n").is_err());
    }

    #[test]
    fn empty_document() {
        assert_eq!(parse("").unwrap(), Vec::<Vec<String>>::new());
    }

    #[test]
    fn append_writer_creates_with_header_and_appends() {
        let dir = std::env::temp_dir().join(format!("ftsim-csv-{}", std::process::id()));
        let path = dir.join("nested/cells.csv");
        let (mut w, existing) = AppendWriter::open(&path, "a,b").unwrap();
        assert_eq!(existing, "");
        w.append_row("1,2").unwrap();
        drop(w);

        // Reopening reads prior content back and does not rewrite the
        // header.
        let (mut w, existing) = AppendWriter::open(&path, "a,b").unwrap();
        assert_eq!(existing, "a,b\n1,2\n");
        w.append_row("3,4").unwrap();
        drop(w);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_writer_repairs_torn_trailing_line() {
        let dir = std::env::temp_dir().join(format!("ftsim-csv-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.csv");
        // Simulate a writer killed mid-row: no trailing newline.
        std::fs::write(&path, "a,b\n1,2\n3,").unwrap();
        let (mut w, existing) = AppendWriter::open(&path, "a,b").unwrap();
        assert_eq!(existing, "a,b\n1,2\n", "torn line must be cut away");
        w.append_row("5,6").unwrap();
        drop(w);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "a,b\n1,2\n5,6\n",
            "the file must hold only whole rows after repair"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_writer_cuts_fragment_torn_inside_a_quoted_cell() {
        let dir = std::env::temp_dir().join(format!("ftsim-csv-quoted-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.csv");
        // A row with an embedded newline, torn just after that newline:
        // the tail *ends* with '\n' but is still a fragment, which only
        // the CSV-aware repair detects (an unterminated quoted cell).
        std::fs::write(&path, "a,b\n1,2\n3,\"two\n").unwrap();
        let (mut w, existing) = AppendWriter::open(&path, "a,b").unwrap();
        assert_eq!(existing, "a,b\n1,2\n", "quoted fragment must be cut away");
        w.append_row("5,6").unwrap();
        drop(w);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n5,6\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_writer_survives_tail_torn_mid_utf8() {
        let dir = std::env::temp_dir().join(format!("ftsim-csv-utf8-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.csv");
        // "é" is 0xC3 0xA9; keep only the first byte — a writer killed
        // mid-way through a multi-byte character.
        let mut bytes = b"a,b\n1,2\ncaf".to_vec();
        bytes.push(0xC3);
        std::fs::write(&path, &bytes).unwrap();
        let (mut w, existing) = AppendWriter::open(&path, "a,b").unwrap();
        assert_eq!(existing, "a,b\n1,2\n", "torn multi-byte tail cut away");
        w.append_row("5,6").unwrap();
        drop(w);
        let repaired = std::fs::read(&path).unwrap();
        assert!(repaired.ends_with(b"\n5,6\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
