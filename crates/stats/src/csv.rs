//! RFC-4180-style CSV writing and parsing.
//!
//! The experiment harness exports run records as CSV without external
//! dependencies; this module provides quoting-aware escaping, row
//! joining, and a parser that inverts them exactly (so record → CSV →
//! record round trips are testable).

/// Quotes a single cell when it contains a comma, quote or newline.
pub fn escape(cell: &str) -> String {
    if cell.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Joins cells into one CSV row (no trailing newline).
pub fn join_row<I, S>(cells: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    cells
        .into_iter()
        .map(|c| escape(c.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// CSV parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parses a CSV document into rows of cells, honouring quoted cells
/// (including embedded newlines, commas and doubled quotes).
///
/// # Errors
///
/// [`CsvError`] on an unterminated quoted cell or a stray quote.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    // Whether the current (possibly empty) cell has been started; used to
    // avoid emitting a phantom row for a trailing newline.
    let mut in_row = false;

    while let Some(c) = chars.next() {
        match c {
            // A quote starts a quoted cell only at the very beginning of
            // the cell.
            '"' if cell.is_empty() => {
                // Quoted cell: consume until the closing quote.
                in_row = true;
                loop {
                    match chars.next() {
                        None => {
                            return Err(CsvError {
                                line,
                                message: "unterminated quoted cell".to_string(),
                            })
                        }
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cell.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => {
                            if c == '\n' {
                                line += 1;
                            }
                            cell.push(c);
                        }
                    }
                }
                // RFC 4180: a closing quote must be followed by a
                // delimiter or end the document; silently merging
                // trailing characters would hide corruption.
                if !matches!(chars.peek(), None | Some(',' | '\n' | '\r')) {
                    return Err(CsvError {
                        line,
                        message: "unexpected character after closing quote".to_string(),
                    });
                }
            }
            '"' => {
                return Err(CsvError {
                    line,
                    message: "quote inside unquoted cell".to_string(),
                })
            }
            ',' => {
                in_row = true;
                row.push(std::mem::take(&mut cell));
            }
            '\r' => {
                // Swallow the CR of a CRLF; a bare CR ends the row too.
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                line += 1;
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                in_row = false;
            }
            '\n' => {
                line += 1;
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                in_row = false;
            }
            c => {
                in_row = true;
                cell.push(c);
            }
        }
    }
    if in_row || !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cells_untouched() {
        assert_eq!(escape("gcc"), "gcc");
        assert_eq!(join_row(["a", "b", "c"]), "a,b,c");
    }

    #[test]
    fn special_cells_quoted() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn parse_inverts_join() {
        let cells = vec![
            "plain".to_string(),
            "with,comma".to_string(),
            "with \"quotes\"".to_string(),
            "multi\nline".to_string(),
            String::new(),
        ];
        let row = join_row(&cells);
        let parsed = parse(&row).unwrap();
        assert_eq!(parsed, vec![cells]);
    }

    #[test]
    fn multiple_rows_and_trailing_newline() {
        let text = "a,b\nc,d\n";
        assert_eq!(
            parse(text).unwrap(),
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string(), "d".to_string()],
            ]
        );
    }

    #[test]
    fn crlf_rows() {
        let text = "a,b\r\nc,d\r\n";
        assert_eq!(parse(text).unwrap().len(), 2);
    }

    #[test]
    fn empty_cells_preserved() {
        assert_eq!(
            parse("a,,c\n").unwrap(),
            vec![vec!["a".to_string(), String::new(), "c".to_string()]]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("\"unterminated").is_err());
        let err = parse("bad\"quote\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        // Trailing characters after a closing quote are corruption, not
        // cell content.
        assert!(parse("\"SS-2\"x,1\n").is_err());
    }

    #[test]
    fn empty_document() {
        assert_eq!(parse("").unwrap(), Vec::<Vec<String>>::new());
    }
}
