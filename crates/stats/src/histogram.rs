//! Bucketed histograms for distributions such as rewind penalties.

use std::fmt;

/// A histogram over `u64` samples with fixed-width buckets plus an overflow
/// bucket.
///
/// The simulator uses this to report distributions the paper discusses in
/// prose, e.g. "typical recovery costs observed in fpppp simulations are
/// around 30 cycles" (Section 5.3) is checked against the rewind-penalty
/// histogram's mean and median.
///
/// # Examples
///
/// ```
/// use ftsim_stats::Histogram;
///
/// let mut h = Histogram::new(10, 8); // 8 buckets of width 10, then overflow
/// h.record(3);
/// h.record(35);
/// h.record(1000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "bucket count must be positive");
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded samples; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of samples that fell in the bucket containing `value`.
    pub fn bucket_count(&self, value: u64) -> u64 {
        let idx = (value / self.bucket_width) as usize;
        self.buckets.get(idx).copied().unwrap_or(self.overflow)
    }

    /// Number of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate p-th percentile (0-100) computed from bucket midpoints.
    ///
    /// Good enough for reporting medians of cycle-count distributions; exact
    /// values are not retained.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (i as u64 * self.bucket_width) as f64 + self.bucket_width as f64 / 2.0;
            }
        }
        // Fell into overflow: report the max as a conservative answer.
        self.max as f64
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs, ending with the
    /// overflow bucket if nonempty.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let w = self.bucket_width;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &n)| (i as u64 * w, n))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "n={} mean={:.1} min={:?} max={:?}",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )?;
        for (lo, n) in self.iter() {
            if n > 0 {
                writeln!(f, "  [{lo:>6}..): {n}")?;
            }
        }
        if self.overflow > 0 {
            writeln!(f, "  overflow: {}", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_buckets() {
        let mut h = Histogram::new(10, 4);
        for v in [0, 9, 10, 39, 40, 100] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(10), 1);
        assert_eq!(h.bucket_count(30), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn mean_and_percentile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert!((h.mean() - 49.5).abs() < 1e-9);
        let p50 = h.percentile(50.0);
        assert!((p50 - 49.5).abs() <= 1.0, "median {p50}");
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(5, 3);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        let _ = Histogram::new(0, 3);
    }

    #[test]
    fn display_mentions_counts() {
        let mut h = Histogram::new(10, 2);
        h.record(5);
        let s = h.to_string();
        assert!(s.contains("n=1"));
    }
}
