//! A small self-contained JSON value model, writer and parser.
//!
//! The experiment harness serializes its run records without external
//! dependencies (the build environment has no registry access), so this
//! module provides the whole round trip: [`JsonValue`] construction,
//! rendering via [`JsonValue::render`] / `Display`, and parsing via
//! [`JsonValue::parse`]. Object key order is preserved, and numbers are
//! written with Rust's shortest-round-trip float formatting so a
//! render→parse cycle reproduces values bit-exactly.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `u64` (kept exact; `f64` would lose precision
    /// above 2^53).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A (finite) float. Non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with preserved key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (String, JsonValue)>,
    {
        JsonValue::Obj(pairs.into_iter().collect())
    }

    /// Looks a key up in an object node.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(x) => Some(x),
            JsonValue::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The node as `i64` when it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::I64(x) => Some(x),
            JsonValue::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The node as `f64` for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(x) => Some(x as f64),
            JsonValue::I64(x) => Some(x as f64),
            JsonValue::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The node as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The node as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON indented by `indent` spaces per level.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(x) => out.push_str(&x.to_string()),
            JsonValue::I64(x) => out.push_str(&x.to_string()),
            JsonValue::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // parses back to the identical bits.
                    let s = format!("{x}");
                    out.push_str(&s);
                    // Keep floats recognizable as floats on re-parse.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a JSON document (full input must be consumed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset and message.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Basic-plane escapes only: enough for the
                            // control characters the writer produces.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(JsonValue::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(JsonValue::I64(x));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

impl fmt::Display for JsonValue {
    /// Writes the compact rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let v = JsonValue::obj([
            ("name".to_string(), JsonValue::Str("fpppp".to_string())),
            ("ipc".to_string(), JsonValue::F64(1.2345678901234567)),
            ("cycles".to_string(), JsonValue::U64(u64::MAX)),
            ("delta".to_string(), JsonValue::I64(-42)),
            ("halted".to_string(), JsonValue::Bool(true)),
            ("none".to_string(), JsonValue::Null),
            (
                "arr".to_string(),
                JsonValue::Arr(vec![JsonValue::U64(1), JsonValue::F64(0.5)]),
            ),
        ]);
        let text = v.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_rendering_parses_back() {
        let v = JsonValue::obj([
            ("a".to_string(), JsonValue::U64(1)),
            (
                "b".to_string(),
                JsonValue::Arr(vec![JsonValue::Bool(false), JsonValue::Str("x".into())]),
            ),
        ]);
        let pretty = v.render_pretty(2);
        assert!(pretty.contains('\n'));
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_stay_floats() {
        // A whole-valued f64 must re-parse as F64, not U64.
        let v = JsonValue::F64(2.0);
        assert_eq!(v.render(), "2.0");
        assert_eq!(JsonValue::parse("2.0").unwrap(), v);
        assert_eq!(JsonValue::parse("2").unwrap(), JsonValue::U64(2));
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for x in [1.0 / 3.0, 0.1 + 0.2, 1e-300, 6.02214076e23, -0.0] {
            let text = JsonValue::F64(x).render();
            match JsonValue::parse(&text).unwrap() {
                JsonValue::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{text}"),
                other => panic!("{text} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "quote \" backslash \\ newline \n tab \t nul \u{1} ünïcode";
        let v = JsonValue::Str(nasty.to_string());
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = JsonValue::obj([
            ("n".to_string(), JsonValue::U64(7)),
            ("s".to_string(), JsonValue::Str("x".into())),
            ("b".to_string(), JsonValue::Bool(true)),
            ("f".to_string(), JsonValue::F64(0.5)),
        ]);
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(0.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("n"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,2").is_err());
        assert!(JsonValue::parse("true false").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        let err = JsonValue::parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn negative_and_large_integers() {
        assert_eq!(
            JsonValue::parse("-9223372036854775808").unwrap(),
            JsonValue::I64(i64::MIN)
        );
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::U64(u64::MAX)
        );
    }
}
