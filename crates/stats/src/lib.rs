//! Statistics and reporting utilities for the `ftsim` workspace.
//!
//! This crate is the reporting substrate shared by the simulator and the
//! experiment harness. It provides:
//!
//! * [`Counter`] and [`Ratio`] — simple event accounting used throughout the
//!   pipeline model;
//! * [`Histogram`] — bucketed distributions (e.g. rewind penalties, RUU
//!   occupancy);
//! * [`Table`] — aligned text / CSV / Markdown table rendering, used to print
//!   the paper's tables exactly as rows;
//! * [`Series`] and [`AsciiPlot`] — (x, y) series with a logarithmic-x ASCII
//!   plot, used to print the paper's figures as curves in a terminal;
//! * [`wilson_interval`] — binomial confidence bounds for the
//!   fault-injection sensitivity tables of `ftsim-analysis`;
//! * [`json`] and [`csv`] — dependency-free writers *and* parsers used by
//!   the experiment harness to serialize run records round-trippably.
//!
//! # Examples
//!
//! ```
//! use ftsim_stats::Table;
//!
//! let mut t = Table::new(["bench", "IPC"]);
//! t.row(["gcc", "2.41"]);
//! let text = t.render();
//! assert!(text.contains("gcc"));
//! ```

#![warn(missing_docs)]

mod binomial;
mod counter;
pub mod csv;
mod histogram;
pub mod json;
mod plot;
mod series;
mod table;

pub use binomial::wilson_interval;
pub use counter::{Counter, Ratio};
pub use histogram::Histogram;
pub use json::{JsonError, JsonValue};
pub use plot::AsciiPlot;
pub use series::{log_space, Series};
pub use table::{Align, Table};

/// Format a float with a fixed number of decimals, trimming `-0.00` to `0.00`.
///
/// This is the single float formatter used by the experiment harness so that
/// every table in `EXPERIMENTS.md` renders consistently.
///
/// # Examples
///
/// ```
/// assert_eq!(ftsim_stats::fmt_f(1.23456, 2), "1.23");
/// assert_eq!(ftsim_stats::fmt_f(-0.0001, 2), "0.00");
/// ```
pub fn fmt_f(x: f64, decimals: usize) -> String {
    let s = format!("{x:.decimals$}");
    if s.starts_with('-') && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

/// Format a value as a percentage with two decimals (e.g. `32.00%`).
///
/// # Examples
///
/// ```
/// assert_eq!(ftsim_stats::fmt_pct(0.3201), "32.01%");
/// ```
pub fn fmt_pct(frac: f64) -> String {
    format!("{}%", fmt_f(frac * 100.0, 2))
}
