//! Logarithmic-x ASCII line plots for terminal figure output.

use crate::Series;

/// An ASCII plot with a logarithmic x axis and linear y axis.
///
/// The experiment harness uses this to render the paper's IPC-vs-fault-
/// frequency figures directly in the terminal; the same series are also
/// emitted as CSV for external plotting.
///
/// # Examples
///
/// ```
/// use ftsim_stats::{AsciiPlot, Series};
///
/// let s = Series::from_points("R=2", [(1e-6, 0.5), (1e-4, 0.49), (1e-2, 0.2)]);
/// let plot = AsciiPlot::new("IPC vs fault rate", 40, 10).series(s).render();
/// assert!(plot.contains("R=2"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@'];

impl AsciiPlot {
    /// Creates a plot canvas of `width` columns by `height` rows.
    ///
    /// # Panics
    ///
    /// Panics if `width < 10` or `height < 4`.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 10, "plot width too small");
        assert!(height >= 4, "plot height too small");
        Self {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a curve (consuming builder).
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the plot to a string.
    ///
    /// Points with non-positive x are skipped (log axis). An empty plot
    /// renders the title and an empty frame.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points().iter().copied())
            .filter(|(x, _)| *x > 0.0)
            .collect();
        let (x0, x1) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (x, _)| {
                (lo.min(*x), hi.max(*x))
            });
        let (y0, y1) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (_, y)| {
                (lo.min(*y), hi.max(*y))
            });
        let have_data = !pts.is_empty() && x1 > 0.0;
        let (lx0, lx1) = if have_data {
            (x0.log10(), x1.log10())
        } else {
            (0.0, 1.0)
        };
        let (y0, y1) = if have_data && (y1 - y0).abs() > f64::EPSILON {
            (y0, y1)
        } else if have_data {
            (y0 - 0.5, y1 + 0.5)
        } else {
            (0.0, 1.0)
        };

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for &(x, y) in s.points() {
                if x <= 0.0 {
                    continue;
                }
                let tx = if lx1 > lx0 {
                    (x.log10() - lx0) / (lx1 - lx0)
                } else {
                    0.5
                };
                let ty = (y - y0) / (y1 - y0);
                let col = ((tx * (self.width - 1) as f64).round() as usize).min(self.width - 1);
                let row = self.height
                    - 1
                    - ((ty * (self.height - 1) as f64).round() as usize).min(self.height - 1);
                grid[row][col] = mark;
            }
        }

        let mut out = format!("{}\n", self.title);
        for (i, row) in grid.iter().enumerate() {
            let y_label = y1 - (y1 - y0) * i as f64 / (self.height - 1) as f64;
            out.push_str(&format!("{y_label:>8.3} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>10}1e{:<8.1}{}1e{:.1}\n",
            "",
            lx0,
            " ".repeat(self.width.saturating_sub(18)),
            lx1
        ));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.name()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_marks_and_legend() {
        let s = Series::from_points("curve-a", [(1e-6, 1.0), (1e-3, 0.8), (1e-1, 0.1)]);
        let p = AsciiPlot::new("t", 40, 8).series(s).render();
        assert!(p.contains('*'));
        assert!(p.contains("curve-a"));
        assert!(p.lines().count() >= 10);
    }

    #[test]
    fn two_series_use_distinct_marks() {
        let a = Series::from_points("a", [(1e-3, 0.0)]);
        let b = Series::from_points("b", [(1e-2, 1.0)]);
        let p = AsciiPlot::new("t", 30, 6).series(a).series(b).render();
        assert!(p.contains('*'));
        assert!(p.contains('+'));
    }

    #[test]
    fn empty_plot_does_not_panic() {
        let p = AsciiPlot::new("empty", 20, 5).render();
        assert!(p.contains("empty"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let s = Series::from_points("flat", [(1e-3, 0.5), (1e-2, 0.5)]);
        let p = AsciiPlot::new("t", 20, 5).series(s).render();
        assert!(p.contains('*'));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn tiny_canvas_panics() {
        let _ = AsciiPlot::new("t", 2, 5);
    }
}
