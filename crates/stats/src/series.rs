//! Named (x, y) series used to carry figure data from experiments to output.

/// A named sequence of `(x, y)` points, e.g. one curve of Figure 3.
///
/// # Examples
///
/// ```
/// use ftsim_stats::Series;
///
/// let s = Series::from_points("R=2", [(1e-6, 0.5), (1e-3, 0.45)]);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.name(), "R=2");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from an iterator of points.
    pub fn from_points<I>(name: impl Into<String>, points: I) -> Self
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        Self {
            name: name.into(),
            points: points.into_iter().collect(),
        }
    }

    /// The curve's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The recorded points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the y value at the largest x ≤ `x`, by linear search.
    ///
    /// Returns `None` for an empty series or when `x` precedes every point.
    pub fn y_at_or_before(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|(px, _)| *px <= x)
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|&(_, y)| y)
    }
}

/// Generates `n` log-spaced values from `lo` to `hi` inclusive.
///
/// Used for fault-frequency sweeps (the paper plots IPC against fault rate on
/// a logarithmic axis in Figures 3, 4 and 6).
///
/// # Panics
///
/// Panics if `lo` or `hi` is not strictly positive, or `n < 2`.
///
/// # Examples
///
/// ```
/// let xs = ftsim_stats::log_space(1e-6, 1e-2, 5);
/// assert_eq!(xs.len(), 5);
/// assert!((xs[0] - 1e-6).abs() < 1e-15);
/// assert!((xs[4] - 1e-2).abs() < 1e-8);
/// ```
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "log_space bounds must be positive");
    assert!(n >= 2, "log_space needs at least two points");
    let (l0, l1) = (lo.log10(), hi.log10());
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            10f64.powf(l0 + t * (l1 - l0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = Series::new("c");
        assert!(s.is_empty());
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_at_or_before(1.5), Some(10.0));
        assert_eq!(s.y_at_or_before(2.0), Some(20.0));
        assert_eq!(s.y_at_or_before(0.5), None);
    }

    #[test]
    fn log_space_is_monotone_and_bounded() {
        let xs = log_space(1e-7, 1e-1, 13);
        assert_eq!(xs.len(), 13);
        for w in xs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((xs[0] - 1e-7).abs() / 1e-7 < 1e-9);
        assert!((xs[12] - 1e-1).abs() / 1e-1 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_space_rejects_zero() {
        let _ = log_space(0.0, 1.0, 3);
    }
}
