//! Aligned text, CSV and Markdown table rendering.

use std::fmt;

/// Column alignment for [`Table`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default; used for names).
    #[default]
    Left,
    /// Right-aligned (used for numbers).
    Right,
}

/// A simple row/column table that renders as aligned text, CSV, or Markdown.
///
/// The experiment harness prints every reproduced paper table through this
/// type so that terminal output, `EXPERIMENTS.md`, and CSV exports agree.
///
/// # Examples
///
/// ```
/// use ftsim_stats::{Align, Table};
///
/// let mut t = Table::new(["bench", "SS-1", "SS-2"]);
/// t.align(1, Align::Right).align(2, Align::Right);
/// t.row(["gcc", "3.12", "1.98"]);
/// let txt = t.render();
/// assert!(txt.lines().count() >= 3); // header, rule, row
/// assert!(t.to_csv().starts_with("bench,SS-1,SS-2"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Sets the alignment of column `col`. Returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Marks every column except the first as right-aligned — the common
    /// layout for "name + numbers" tables.
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let fill = " ".repeat(width.saturating_sub(len));
        match align {
            Align::Left => format!("{cell}{fill}"),
            Align::Right => format!("{fill}{cell}"),
        }
    }

    /// Renders the table as aligned plain text with a header rule.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| Self::pad(h, w[i], self.aligns[i]))
            .collect();
        out.push_str(&hdr.join("  "));
        out.push('\n');
        let rule: Vec<String> = w.iter().map(|&n| "-".repeat(n)).collect();
        out.push_str(&rule.join("  "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| Self::pad(c, w[i], self.aligns[i]))
                .collect();
            out.push_str(cells.join("  ").trim_end());
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV, quoting cells that need it (commas,
    /// quotes, newlines) per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = crate::csv::join_row(&self.headers);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&crate::csv::join_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("| {} |\n", self.headers.join(" | "));
        let marks: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => "---",
                Align::Right => "---:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", marks.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["name", "ipc"]);
        t.numeric();
        t.row(["gcc", "2.5"]).row(["fpppp", "1.25"]);
        t
    }

    #[test]
    fn alignment_pads_columns() {
        let t = sample();
        let txt = t.render();
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("name"));
        // numeric column right-aligned: "2.5" ends the row.
        assert!(lines[2].ends_with("2.5"));
        assert!(lines[3].ends_with("1.25"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let t = sample();
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "name,ipc");
    }

    #[test]
    fn markdown_has_alignment_row() {
        let t = sample();
        let md = t.to_markdown();
        assert!(md.contains("| --- | ---: |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
    }
}
