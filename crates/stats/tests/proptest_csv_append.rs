//! Property test: [`ftsim_stats::csv::AppendWriter`] torn-tail repair.
//!
//! A writer can die at any byte of its fsynced append stream — mid-row,
//! mid-header, between a row and its newline, or half-way through a
//! multi-byte UTF-8 character. Whatever the truncation point, reopening
//! the file must (a) hand back every complete row exactly as written,
//! (b) never duplicate a row, and (c) cut the torn fragment away so the
//! file holds only whole rows and fresh appends start on a clean
//! boundary.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ftsim_stats::csv::{join_row, AppendWriter};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch_file() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "ftsim-proptest-csv-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    (dir.clone(), dir.join("cells.csv"))
}

const HEADER: &str = "idx,payload,extra";

/// Cell contents that exercise quoting, embedded separators/newlines and
/// multi-byte UTF-8 (2-, 3- and 4-byte sequences).
fn cell_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "plain".to_string(),
        String::new(),
        "a,b".to_string(),
        "say \"hi\"".to_string(),
        "two\nlines".to_string(),
        "café".to_string(),
        "日本語テスト".to_string(),
        "crash😀point".to_string(),
    ])
}

fn rows_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(prop::collection::vec(cell_strategy(), 1..5), 1..6).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            // A unique index cell per row so duplication is observable.
            .map(|(i, cells)| {
                let mut all = vec![i.to_string()];
                all.extend(cells);
                join_row(&all)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn torn_tail_repair_recovers_every_complete_row(
        rows in rows_strategy(),
        kraw in any::<u64>(),
        fresh_cell in cell_strategy(),
    ) {
        // Write the full file the way the daemon does, then truncate it
        // at an arbitrary byte to simulate a crash mid-append.
        let (dir, path) = scratch_file();
        let (mut writer, existing) = AppendWriter::open(&path, HEADER).unwrap();
        prop_assert_eq!(existing.as_str(), "");
        let mut offsets = Vec::new(); // byte offset of each row's end (incl. newline)
        let mut len = HEADER.len() as u64 + 1;
        for row in &rows {
            writer.append_row(row).unwrap();
            len += row.len() as u64 + 1;
            offsets.push(len);
        }
        drop(writer);
        let full = std::fs::read(&path).unwrap();
        prop_assert_eq!(full.len() as u64, len);

        let k = (kraw % (len + 1)) as usize;
        let truncated = &full[..k];
        std::fs::write(&path, truncated).unwrap();

        // The largest prefix of whole lines (header + complete rows)
        // that survived the cut.
        let boundary = if k > HEADER.len() {
            let mut b = HEADER.len() + 1;
            for off in &offsets {
                if *off as usize <= k {
                    b = *off as usize;
                }
            }
            b
        } else {
            0
        };

        let (mut writer, recovered) = AppendWriter::open(&path, HEADER).unwrap();
        // (a) Repair truncates to exactly the surviving whole-row prefix:
        // nothing less (no complete row lost) and nothing more (no torn
        // fragment survives to poison later reads). A cut inside the
        // header recovers nothing and a fresh header is written.
        let intact = std::str::from_utf8(&full[..boundary]).unwrap();
        if boundary == 0 {
            prop_assert!(recovered.is_empty(), "header fragment kept: {recovered:?}");
        } else {
            prop_assert_eq!(
                recovered.as_str(),
                intact,
                "repair must land on the surviving whole-row prefix"
            );
        }
        // (b) No duplication: each row appears exactly once in the
        // recovered text iff it survived whole; a torn row is cut away
        // entirely, never kept as a fragment or a second full copy.
        for (i, row) in rows.iter().enumerate() {
            let whole = format!("\n{row}\n");
            let haystack = format!("\n{recovered}");
            let count = haystack.matches(&whole).count();
            let survived = offsets[i] as usize <= boundary;
            if survived {
                prop_assert_eq!(count, 1, "row {} duplicated or lost", i);
            } else {
                prop_assert_eq!(count, 0, "torn row {} kept by the repair", i);
            }
        }
        // (c) The tail is terminated and fresh appends get their own line.
        prop_assert!(recovered.is_empty() || recovered.ends_with('\n'));
        let fresh = join_row([&(rows.len() + 1).to_string(), &fresh_cell]);
        writer.append_row(&fresh).unwrap();
        drop(writer);
        let final_bytes = std::fs::read(&path).unwrap();
        let tail = format!("\n{fresh}\n");
        prop_assert!(
            final_bytes.ends_with(tail.as_bytes()),
            "fresh row merged into the torn tail"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
