//! Seeded fuzz-program generator with a constructive checksum model.
//!
//! Layered on the same ISA surface as [`crate::generator`], but built for
//! the `ftsim-fuzz` differential oracle rather than for matching SPEC
//! instruction mixes: every program this module emits is **predictable by
//! construction**. Emission maintains a shadow model (accumulator
//! registers plus a sparse memory map) that mirrors the exact wrapping
//! semantics of [`ftsim_isa::execute`], so the generator knows — without
//! running any emulator — the final checksum the program will store and
//! the exact number of instructions it will retire. A violation of either
//! prediction is a bug in one of the three independent computations
//! (closed-form model, in-order emulator, out-of-order pipeline), which is
//! precisely what the fuzzer exists to find.
//!
//! A program is a *plan*: a [`FuzzSpec`] names a variant, a seed, an
//! iteration count and a block count. Block descriptors are derived from
//! the seed alone (never from the iteration count or the kept subset), so
//! a shrinker can drop blocks or halve iterations without perturbing the
//! surviving blocks — the generation grammar is closed under shrinking.
//!
//! Program shape:
//!
//! ```text
//! prologue:  accumulators, BASE, IDX=0, LOOP=iterations
//! top:       kept blocks, in index order
//!            IDX += 1; LOOP -= 1; bne LOOP, r0, top
//! epilogue:  fold accumulators -> checksum; store at check_addr; halt
//! functions: call-block bodies (RAS-deep variant), after halt
//! ```

use ftsim_isa::{IntReg, Program, ProgramBuilder, DATA_BASE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Loop induction variable counting up `0..iterations`.
const IDX: IntReg = IntReg::new(8);
/// Loop counter counting down to zero.
const LOOP: IntReg = IntReg::new(9);
/// Data-image base pointer.
const BASE: IntReg = IntReg::new(10);
/// Checksum store pointer (epilogue only).
const CHK: IntReg = IntReg::new(13);
/// Scratch registers.
const TMP0: IntReg = IntReg::new(25);
const TMP1: IntReg = IntReg::new(26);
const TMP2: IntReg = IntReg::new(27);
/// Constant-loading scratch.
const CONST: IntReg = IntReg::new(28);
/// Number of accumulator registers (`r17..r21`).
const ACCS: usize = 4;

/// Accumulator register `a` (`0..ACCS`).
fn acc_reg(a: usize) -> IntReg {
    IntReg::new(17 + a as u8)
}

/// Link register for call depth `k` (`r1..r7`); depth is capped well
/// below the registers the generator reserves for other roles.
fn link_reg(k: usize) -> IntReg {
    IntReg::new(1 + k as u8)
}

/// Deepest call chain a RAS-deep block may emit.
const MAX_CALL_DEPTH: usize = 6;

/// The program family a [`FuzzSpec`] draws its blocks from.
///
/// Each variant weights the block pool toward one micro-architectural
/// stressor; every variant stays fully predictable by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzVariant {
    /// Dense data-dependent conditional branches (both directions taken).
    BranchHeavy,
    /// Overlapping loads and stores through computed addresses.
    AliasHeavy,
    /// Nested call/return chains exercising the return-address stack.
    RasDeep,
    /// Serially dependent integer divide/remainder chains.
    SerialDiv,
    /// Pure wrapping arithmetic folded into the checksum.
    SelfCheckSum,
}

impl FuzzVariant {
    /// All variants, in the stable order used by seed derivation.
    pub const ALL: [FuzzVariant; 5] = [
        FuzzVariant::BranchHeavy,
        FuzzVariant::AliasHeavy,
        FuzzVariant::RasDeep,
        FuzzVariant::SerialDiv,
        FuzzVariant::SelfCheckSum,
    ];

    /// Stable lower-case name (`branch-heavy`, `alias-heavy`, `ras-deep`,
    /// `serial-div`, `self-check-sum`).
    pub fn name(self) -> &'static str {
        match self {
            FuzzVariant::BranchHeavy => "branch-heavy",
            FuzzVariant::AliasHeavy => "alias-heavy",
            FuzzVariant::RasDeep => "ras-deep",
            FuzzVariant::SerialDiv => "serial-div",
            FuzzVariant::SelfCheckSum => "self-check-sum",
        }
    }

    /// Resolves a name produced by [`FuzzVariant::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|v| v.name() == name)
    }
}

/// A complete, reproducible description of one generated program.
///
/// Two specs with equal fields generate byte-identical programs. The
/// shrinker only ever *reduces* a spec — drops entries from `keep`, halves
/// `iterations` — so any repro file containing a spec replays exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Block-pool family.
    pub variant: FuzzVariant,
    /// Seed for all derived randomness (working set, data image, block
    /// descriptors).
    pub seed: u64,
    /// Loop trip count (≥ 1).
    pub iterations: u32,
    /// Number of block descriptors derived from the seed. Derivation
    /// depends only on `(variant, seed, blocks)`, never on `iterations`
    /// or `keep`.
    pub blocks: u32,
    /// Indices (into `0..blocks`) of the blocks actually emitted, in
    /// ascending order; `None` keeps all of them. The shrinker minimizes
    /// this list.
    pub keep: Option<Vec<u32>>,
}

impl FuzzSpec {
    /// Derives the canonical spec for a fuzz seed: variant, iteration
    /// count and block count are all drawn from the seed, all blocks
    /// kept.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xf022_5eed_c0de_0001);
        let variant = FuzzVariant::ALL[rng.gen_range(0..FuzzVariant::ALL.len())];
        let iterations = rng.gen_range(4u32..40);
        let blocks = rng.gen_range(6u32..20);
        Self {
            variant,
            seed,
            iterations,
            blocks,
            keep: None,
        }
    }

    /// The block indices this spec emits, in ascending order.
    pub fn kept(&self) -> Vec<u32> {
        match &self.keep {
            Some(k) => k.clone(),
            None => (0..self.blocks).collect(),
        }
    }

    /// Generates the program and its constructive predictions.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero or `keep` names a block index
    /// `>= blocks`.
    pub fn generate(&self) -> FuzzProgram {
        assert!(self.iterations >= 1, "iterations must be at least 1");
        let kept = self.kept();
        assert!(
            kept.iter().all(|&b| b < self.blocks),
            "keep indices must lie in 0..blocks"
        );
        generate(self, &kept)
    }
}

/// A generated program plus everything the generator predicted about it.
#[derive(Debug, Clone)]
pub struct FuzzProgram {
    /// The executable program (text + data image).
    pub program: Program,
    /// Address of the 8-byte checksum word the epilogue stores.
    pub check_addr: u64,
    /// The checksum value the program must store — computed by the
    /// shadow model during emission, not by running anything.
    pub expected_checksum: u64,
    /// Exact number of instructions the program retires before (and
    /// including) `halt`.
    pub expected_retired: u64,
    /// Data-image working set in bytes (a power of two).
    pub working_set: u32,
    /// Number of blocks actually emitted into the loop body.
    pub emitted_blocks: u32,
}

/// One derived block: its parameters plus (after emission) the measured
/// instruction counts needed for exact retirement prediction.
#[derive(Debug, Clone)]
enum Block {
    /// `acc += ((IDX << shift) * mul) ^ xor`
    Arith {
        acc: usize,
        shift: u32,
        mul: i64,
        xor: i32,
        len: u64,
    },
    /// `if (IDX & mask) == 0 { acc += add } else { acc ^= xor }`
    Branch {
        acc: usize,
        mask: i32,
        add: i32,
        xor: i32,
        len_taken: u64,
        len_else: u64,
    },
    /// `acc += mem[a(off_load, IDX)]; mem[a(off_store, IDX)] = acc`
    Mem {
        acc: usize,
        off_load: i32,
        off_store: i32,
        len: u64,
    },
    /// `jal` into a chain of `depth` leaf functions, each applying one
    /// op `(sel, imm)` to `acc` on the way down.
    Call {
        acc: usize,
        ops: Vec<(u8, i32)>,
        len: u64,
    },
    /// `acc = ((acc / d) * d + acc % d) ^ xor` (total RISC-V division
    /// semantics; the reconstruction keeps the value chain serial).
    Div {
        acc: usize,
        divisor: i64,
        xor: i32,
        len: u64,
    },
}

/// The shadow machine the generator folds blocks through: exactly the
/// architectural state the emitted instructions touch, with the wrapping
/// semantics of [`ftsim_isa::execute`].
struct Shadow {
    acc: [u64; ACCS],
    mem: BTreeMap<u64, u64>,
    mask: u64,
}

impl Shadow {
    fn load(&self, addr: u64) -> u64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }
}

/// Sign-extends a 16-bit-range immediate the way `addi`/`xori` do.
fn imm64(imm: i32) -> u64 {
    imm as i64 as u64
}

/// RISC-V total signed division (x/0 = -1), mirroring the ISA's
/// `div_total`.
fn div_total(a: i64, d: i64) -> i64 {
    if d == 0 {
        -1
    } else {
        a.wrapping_div(d)
    }
}

/// RISC-V total signed remainder (x%0 = x), mirroring the ISA's
/// `rem_total`.
fn rem_total(a: i64, d: i64) -> i64 {
    if d == 0 {
        a
    } else {
        a.wrapping_rem(d)
    }
}

impl Block {
    /// Applies this block's effect for loop iteration `i` to the shadow
    /// state and returns the number of instructions the block executes
    /// on that iteration.
    fn apply(&self, sh: &mut Shadow, i: u64) -> u64 {
        match self {
            Block::Arith {
                acc,
                shift,
                mul,
                xor,
                len,
            } => {
                let t = i.wrapping_shl(shift & 63).wrapping_mul(*mul as u64) ^ imm64(*xor);
                sh.acc[*acc] = sh.acc[*acc].wrapping_add(t);
                *len
            }
            Block::Branch {
                acc,
                mask,
                add,
                xor,
                len_taken,
                len_else,
            } => {
                if i & imm64(*mask) == 0 {
                    sh.acc[*acc] = sh.acc[*acc].wrapping_add(imm64(*add));
                    *len_taken
                } else {
                    sh.acc[*acc] ^= imm64(*xor);
                    *len_else
                }
            }
            Block::Mem {
                acc,
                off_load,
                off_store,
                len,
            } => {
                let slot =
                    |off: i32| DATA_BASE + (i.wrapping_shl(3).wrapping_add(imm64(off)) & sh.mask);
                let v = sh.load(slot(*off_load));
                sh.acc[*acc] = sh.acc[*acc].wrapping_add(v);
                sh.mem.insert(slot(*off_store), sh.acc[*acc]);
                *len
            }
            Block::Call { acc, ops, len } => {
                for (sel, imm) in ops {
                    match sel % 2 {
                        0 => sh.acc[*acc] = sh.acc[*acc].wrapping_add(imm64(*imm)),
                        _ => sh.acc[*acc] ^= imm64(*imm),
                    }
                }
                *len
            }
            Block::Div {
                acc,
                divisor,
                xor,
                len,
            } => {
                let a = sh.acc[*acc] as i64;
                let q = div_total(a, *divisor);
                let r = rem_total(a, *divisor);
                sh.acc[*acc] = (q.wrapping_mul(*divisor).wrapping_add(r) as u64) ^ imm64(*xor);
                *len
            }
        }
    }
}

/// Draws one block descriptor; lengths are filled in after emission.
fn draw_block(rng: &mut SmallRng, variant: FuzzVariant) -> Block {
    // Each variant leads with its own stressor and pads with plain
    // arithmetic so every program still folds fresh entropy into the
    // checksum each iteration.
    let roll = rng.gen_range(0u32..10);
    let arith = |rng: &mut SmallRng| Block::Arith {
        acc: rng.gen_range(0..ACCS),
        shift: rng.gen_range(0u32..13),
        mul: rng.gen_range(3i64..0x7fff) | 1,
        xor: rng.gen_range(0i32..0x7fff),
        len: 0,
    };
    match variant {
        FuzzVariant::BranchHeavy if roll < 7 => Block::Branch {
            acc: rng.gen_range(0..ACCS),
            mask: (1 << rng.gen_range(0u32..3)) - 1 + (1 << rng.gen_range(0u32..3)),
            add: rng.gen_range(1i32..0x4000),
            xor: rng.gen_range(1i32..0x4000),
            len_taken: 0,
            len_else: 0,
        },
        FuzzVariant::AliasHeavy if roll < 7 => Block::Mem {
            acc: rng.gen_range(0..ACCS),
            // Small offset pool on purpose: distinct blocks collide on
            // the same slots, creating genuine load/store aliasing.
            off_load: rng.gen_range(0i32..8) * 8,
            off_store: rng.gen_range(0i32..8) * 8,
            len: 0,
        },
        FuzzVariant::RasDeep if roll < 6 => {
            let depth = rng.gen_range(2..MAX_CALL_DEPTH + 1);
            Block::Call {
                acc: rng.gen_range(0..ACCS),
                ops: (0..depth)
                    .map(|_| (rng.gen_range(0u8..2), rng.gen_range(1i32..0x4000)))
                    .collect(),
                len: 0,
            }
        }
        FuzzVariant::SerialDiv if roll < 6 => Block::Div {
            acc: rng.gen_range(0..ACCS),
            divisor: rng.gen_range(2i64..97),
            xor: rng.gen_range(0i32..0x7fff),
            len: 0,
        },
        _ => arith(rng),
    }
}

/// Emission + prediction. `kept` is validated and ascending-ordered by
/// the caller.
fn generate(spec: &FuzzSpec, kept: &[u32]) -> FuzzProgram {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x000f_022b_10c5_u64);
    // Fixed derivation order: working set, accumulator seeds, data
    // image, then block descriptors. Nothing downstream of the seed may
    // depend on `iterations` or `kept`.
    let working_set: u32 = [512u32, 1024, 4096][rng.gen_range(0..3)];
    let addr_mask = u64::from(working_set - 1) & !7;
    let acc_init: [u64; ACCS] = std::array::from_fn(|_| rng.gen::<u64>());
    let image: Vec<u64> = (0..working_set / 8).map(|_| rng.gen::<u64>()).collect();
    let mut blocks: Vec<Block> = (0..spec.blocks)
        .map(|_| draw_block(&mut rng, spec.variant))
        .collect();
    let fold_muls: [i64; ACCS - 1] = std::array::from_fn(|_| rng.gen_range(3i64..0x7fff) | 1);

    let check_addr = DATA_BASE + u64::from(working_set) + 1024;
    let mut b = ProgramBuilder::new();
    b.data_u64(DATA_BASE, &image);

    // Prologue.
    for (a, &v) in acc_init.iter().enumerate() {
        b.li(acc_reg(a), v as i64);
    }
    b.li(BASE, DATA_BASE as i64);
    b.li(IDX, 0);
    b.li(LOOP, i64::from(spec.iterations));
    let prologue_len = b.here() as u64;

    // Loop body: kept blocks, measured as they are emitted.
    b.label("top");
    for &bi in kept {
        emit_block(&mut b, &mut blocks[bi as usize], bi, addr_mask);
    }
    b.addi(IDX, IDX, 1);
    b.addi(LOOP, LOOP, -1);
    b.bne(LOOP, IntReg::ZERO, "top");

    // Epilogue: fold accumulators into ACC0 and store the checksum.
    let epi_start = b.here() as u64;
    for (k, &m) in fold_muls.iter().enumerate() {
        b.li(CONST, m);
        b.mul(TMP0, acc_reg(k + 1), CONST);
        if k % 2 == 0 {
            b.xor(acc_reg(0), acc_reg(0), TMP0);
        } else {
            b.add(acc_reg(0), acc_reg(0), TMP0);
        }
    }
    b.li(CHK, check_addr as i64);
    b.sd(acc_reg(0), CHK, 0);
    b.halt();
    let epilogue_len = b.here() as u64 - epi_start;

    // Call-block function bodies live after `halt`; measuring them
    // completes each Call block's dynamic length.
    for &bi in kept {
        emit_call_functions(&mut b, &mut blocks[bi as usize], bi);
    }

    let program = b
        .build()
        .expect("fuzzgen emits structurally valid programs");

    // Fold the shadow model through the same iteration structure the
    // emitted loop executes, counting retirement exactly.
    let mut sh = Shadow {
        acc: acc_init,
        mem: image
            .iter()
            .enumerate()
            .map(|(w, &v)| (DATA_BASE + 8 * w as u64, v))
            .collect(),
        mask: addr_mask,
    };
    let mut retired = prologue_len;
    for i in 0..u64::from(spec.iterations) {
        for &bi in kept {
            retired += blocks[bi as usize].apply(&mut sh, i);
        }
        retired += 3; // IDX += 1; LOOP -= 1; bne
    }
    retired += epilogue_len;
    let mut checksum = sh.acc[0];
    for (k, &m) in fold_muls.iter().enumerate() {
        let t = sh.acc[k + 1].wrapping_mul(m as u64);
        checksum = if k % 2 == 0 {
            checksum ^ t
        } else {
            checksum.wrapping_add(t)
        };
    }

    FuzzProgram {
        program,
        check_addr,
        expected_checksum: checksum,
        expected_retired: retired,
        working_set,
        emitted_blocks: kept.len() as u32,
    }
}

/// Emits one block into the loop body and records its measured lengths.
fn emit_block(b: &mut ProgramBuilder, block: &mut Block, bi: u32, addr_mask: u64) {
    let start = b.here() as u64;
    match block {
        Block::Arith {
            acc,
            shift,
            mul,
            xor,
            len,
            ..
        } => {
            b.slli(TMP0, IDX, *shift as i32);
            b.li(CONST, *mul);
            b.mul(TMP0, TMP0, CONST);
            b.xori(TMP0, TMP0, *xor);
            b.add(acc_reg(*acc), acc_reg(*acc), TMP0);
            *len = b.here() as u64 - start;
        }
        Block::Branch {
            acc,
            mask,
            add,
            xor,
            len_taken,
            len_else,
        } => {
            let else_lbl = format!("fz{bi}e");
            let end_lbl = format!("fz{bi}x");
            b.andi(TMP0, IDX, *mask);
            b.bne(TMP0, IntReg::ZERO, &else_lbl);
            let head = b.here() as u64 - start;
            b.addi(acc_reg(*acc), acc_reg(*acc), *add);
            b.j(&end_lbl);
            let taken = b.here() as u64 - start - head;
            b.label(&else_lbl);
            b.xori(acc_reg(*acc), acc_reg(*acc), *xor);
            b.label(&end_lbl);
            let els = b.here() as u64 - start - head - taken;
            *len_taken = head + taken;
            *len_else = head + els;
        }
        Block::Mem {
            acc,
            off_load,
            off_store,
            len,
        } => {
            let mask = addr_mask as i32;
            b.slli(TMP0, IDX, 3);
            b.addi(TMP0, TMP0, *off_load);
            b.andi(TMP0, TMP0, mask);
            b.add(TMP0, TMP0, BASE);
            b.ld(TMP1, TMP0, 0);
            b.add(acc_reg(*acc), acc_reg(*acc), TMP1);
            b.slli(TMP2, IDX, 3);
            b.addi(TMP2, TMP2, *off_store);
            b.andi(TMP2, TMP2, mask);
            b.add(TMP2, TMP2, BASE);
            b.sd(acc_reg(*acc), TMP2, 0);
            *len = b.here() as u64 - start;
        }
        Block::Call { .. } => {
            // Only the call site sits in the body; the chain's length is
            // measured when the functions are emitted.
            b.jal(link_reg(0), &format!("fn{bi}_0"));
        }
        Block::Div {
            acc,
            divisor,
            xor,
            len,
        } => {
            b.li(CONST, *divisor);
            b.div(TMP0, acc_reg(*acc), CONST);
            b.rem(TMP1, acc_reg(*acc), CONST);
            b.mul(TMP0, TMP0, CONST);
            b.add(TMP0, TMP0, TMP1);
            b.xori(acc_reg(*acc), TMP0, *xor);
            *len = b.here() as u64 - start;
        }
    }
}

/// Emits the leaf-function chain of a [`Block::Call`] (after `halt`) and
/// completes the block's measured dynamic length: the body-side `jal`
/// plus every instruction of every level, each executed exactly once per
/// call.
fn emit_call_functions(b: &mut ProgramBuilder, block: &mut Block, bi: u32) {
    let Block::Call { acc, ops, len } = block else {
        return;
    };
    let start = b.here() as u64;
    let depth = ops.len();
    for (k, (sel, imm)) in ops.iter().enumerate() {
        b.label(&format!("fn{bi}_{k}"));
        match sel % 2 {
            0 => b.addi(acc_reg(*acc), acc_reg(*acc), *imm),
            _ => b.xori(acc_reg(*acc), acc_reg(*acc), *imm),
        };
        if k + 1 < depth {
            b.jal(link_reg(k + 1), &format!("fn{bi}_{}", k + 1));
        }
        b.jr(link_reg(k));
    }
    *len = 1 + (b.here() as u64 - start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::Emulator;

    fn check_spec(spec: &FuzzSpec) {
        let fp = spec.generate();
        let mut emu = Emulator::new(&fp.program);
        let steps = emu
            .run(4 * fp.expected_retired + 10_000)
            .unwrap_or_else(|e| panic!("{spec:?}: emulator error {e}"));
        assert!(emu.halted(), "{spec:?}: did not halt");
        assert_eq!(steps, fp.expected_retired, "{spec:?}: retirement count");
        assert_eq!(
            emu.mem().read_u64(fp.check_addr),
            fp.expected_checksum,
            "{spec:?}: checksum prediction"
        );
    }

    #[test]
    fn every_variant_is_predictable_by_construction() {
        for (i, variant) in FuzzVariant::ALL.into_iter().enumerate() {
            for seed in 0..12u64 {
                check_spec(&FuzzSpec {
                    variant,
                    seed: seed * 31 + i as u64,
                    iterations: 5 + seed as u32,
                    blocks: 4 + (seed as u32 % 9),
                    keep: None,
                });
            }
        }
    }

    #[test]
    fn seed_derived_specs_are_predictable() {
        for seed in 0..48u64 {
            check_spec(&FuzzSpec::from_seed(seed));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FuzzSpec::from_seed(7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.program.insts(), b.program.insts());
        assert_eq!(a.program.data(), b.program.data());
        assert_eq!(a.expected_checksum, b.expected_checksum);
        assert_eq!(a.expected_retired, b.expected_retired);
    }

    #[test]
    fn shrunk_specs_stay_predictable() {
        let mut spec = FuzzSpec::from_seed(3);
        spec.keep = Some(spec.kept().into_iter().step_by(2).collect());
        spec.iterations = 1;
        check_spec(&spec);
        // Dropping every block still yields a valid, predictable
        // program (loop counter + epilogue only).
        spec.keep = Some(Vec::new());
        check_spec(&spec);
    }

    #[test]
    fn dropping_blocks_does_not_perturb_the_survivors() {
        // The closure property the shrinker relies on: a kept block's
        // emitted instructions are identical whether or not its siblings
        // are present (labels included).
        let full = FuzzSpec::from_seed(11);
        let mut half = full.clone();
        half.keep = Some(full.kept().into_iter().skip(1).collect());
        let a = full.generate();
        let b = half.generate();
        assert_ne!(a.program.len(), b.program.len());
        // Both must still run to completion with correct checksums.
        check_spec(&full);
        check_spec(&half);
    }

    #[test]
    fn variant_names_round_trip() {
        for v in FuzzVariant::ALL {
            assert_eq!(FuzzVariant::from_name(v.name()), Some(v));
        }
        assert_eq!(FuzzVariant::from_name("nope"), None);
    }
}
