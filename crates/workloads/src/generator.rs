//! The synthetic-benchmark program generator.
//!
//! One generated program is a prologue (base registers, chain seeds, FP
//! constants), a main loop whose body is emitted by a greedy
//! largest-deficit scheduler against the profile's Table 2 mix targets,
//! and an epilogue that folds the chains into memory so the whole
//! computation is architecturally observable (and oracle-checkable).
//!
//! Expected *dynamic* instruction counts are tracked during emission —
//! branch diamonds contribute the probability-weighted length of their two
//! paths — so the measured committed mix lands on the Table 2 targets.

use crate::profile::WorkloadProfile;
use ftsim_isa::{FpReg, IntReg, Program, ProgramBuilder, DATA_BASE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Dynamic instructions targeted per loop-body iteration.
const BODY_TARGET: f64 = 300.0;
/// Bytes of the working set addressed between window advances.
const WINDOW: usize = 2048;

/// What the generator emitted, for calibration tests and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorReport {
    /// Expected dynamic counts per body iteration:
    /// `[mem, int, fp_add, fp_mul, fp_div]`.
    pub expected: [f64; 5],
    /// Expected dynamic conditional branches per iteration (including the
    /// loop-back branch).
    pub branches: f64,
    /// Static body length in instructions.
    pub static_body: usize,
}

impl GeneratorReport {
    /// Expected dynamic mix fraction of class `i`
    /// (`[mem, int, fp_add, fp_mul, fp_div]`).
    pub fn fraction(&self, i: usize) -> f64 {
        let total: f64 = self.expected.iter().sum();
        self.expected[i] / total
    }
}

// Register conventions (see module docs in `profile`).
const LOOP_CTR: IntReg = int(9);
const BASE: IntReg = int(10);
const WOFF: IntReg = int(11);
const PTR: IntReg = int(12);
const COND: IntReg = int(14);
const DIV_ONE: IntReg = int(15);
const DIV_CHAIN: IntReg = int(16);
const FIRST_CHAIN: u8 = 17; // r17.. (up to 8 chains)
const FIRST_TMP: u8 = 25; // r25..r28 load temps

const fn int(i: u8) -> IntReg {
    IntReg::new(i)
}

const FP_ADD_CONST: FpReg = fp(30);
const FP_MUL_CONST: FpReg = fp(31);
const FIRST_FP_CHAIN: u8 = 1;
const FIRST_FP_TMP: u8 = 26; // f26..f29 fp load temps

const fn fp(i: u8) -> FpReg {
    FpReg::new(i)
}

struct Emitter<'a> {
    b: ProgramBuilder,
    p: &'a WorkloadProfile,
    rng: SmallRng,
    counts: [f64; 5],
    branches: f64,
    mem_counter: usize,
    chain_rot: usize,
    fp_rot: usize,
    tmp_rot: usize,
    fp_tmp_rot: usize,
    label_counter: usize,
    offset_slot: usize,
    shift_rot: usize,
}

impl<'a> Emitter<'a> {
    fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    fn chain(&mut self) -> IntReg {
        let r = IntReg::new(FIRST_CHAIN + (self.chain_rot % self.p.chains) as u8);
        self.chain_rot += 1;
        r
    }

    fn fp_chain(&mut self) -> FpReg {
        let n = self.p.fp_chains.max(1);
        let r = FpReg::new(FIRST_FP_CHAIN + (self.fp_rot % n) as u8);
        self.fp_rot += 1;
        r
    }

    fn tmp(&mut self) -> IntReg {
        let r = IntReg::new(FIRST_TMP + (self.tmp_rot % 4) as u8);
        self.tmp_rot += 1;
        r
    }

    fn last_tmp(&self) -> IntReg {
        IntReg::new(FIRST_TMP + (self.tmp_rot.wrapping_sub(1) % 4) as u8)
    }

    fn fp_tmp(&mut self) -> FpReg {
        let r = FpReg::new(FIRST_FP_TMP + (self.fp_tmp_rot % 4) as u8);
        self.fp_tmp_rot += 1;
        r
    }

    /// The next offset within the current window: a dense walk over the
    /// profile's reuse span, so the first pass misses each line and later
    /// passes hit — giving a per-profile, tunable L1 miss rate.
    fn offset(&mut self) -> i32 {
        let step = self.p.stride.max(8);
        let span = self.p.reuse_span.min(WINDOW).max(step);
        let off = (self.offset_slot * step) % span;
        self.offset_slot += 1;
        (off & !7) as i32
    }

    /// One integer chain operation (dependence within the chain only).
    fn emit_chain_op(&mut self) {
        let c = self.chain();
        match self.rng.gen_range(0..4u32) {
            0 => self.b.addi(c, c, 3),
            1 => self.b.xori(c, c, 0x55),
            2 => self.b.addi(c, c, -1),
            _ => self.b.ori(c, c, 0x21),
        };
        self.counts[1] += 1.0;
    }

    /// One serially-dependent integer division (ammp's critical path).
    fn emit_serial_div(&mut self) {
        self.b.div(DIV_CHAIN, DIV_CHAIN, DIV_ONE);
        self.counts[1] += 1.0;
    }

    /// One memory unit: occasional window advance, then a load or store
    /// (2:1), FP loads interleaved on FP-heavy profiles.
    fn emit_mem(&mut self) {
        self.mem_counter += 1;
        if self.mem_counter % self.p.ops_per_window.max(1) == 0 && self.p.working_set > WINDOW {
            // Advance the window pointer through the working set.
            let mask = (self.p.working_set - 1) as i32;
            self.b.addi(WOFF, WOFF, WINDOW as i32);
            self.b.andi(WOFF, WOFF, mask);
            self.b.add(PTR, BASE, WOFF);
            self.counts[1] += 3.0;
            self.offset_slot = 0;
        }
        let is_store = self.mem_counter % 3 == 0;
        let off = self.offset();
        if is_store {
            let data = IntReg::new(FIRST_CHAIN + (self.mem_counter % self.p.chains) as u8);
            self.b.sd(data, PTR, off);
        } else if self.p.fp_chains > 0 && self.mem_counter % 3 == 1 && self.p.mix.fp_total() > 0.05
        {
            let ft = self.fp_tmp();
            self.b.lfd(ft, PTR, off);
        } else {
            let t = self.tmp();
            self.b.ld(t, PTR, off);
            if self.p.load_consume {
                let c = self.chain();
                self.b.add(c, c, t);
                self.counts[1] += 1.0;
            }
        }
        self.counts[0] += 1.0;
    }

    /// One conditional-branch diamond testing a pseudo-random bit of the
    /// most recent loaded value.
    fn emit_branch(&mut self) {
        let mask = self.p.branch_bias_mask as i32;
        let p_taken = 1.0 / f64::from(self.p.branch_bias_mask + 1);
        let shifts = [3u32, 7, 13, 19, 29, 37, 43, 53];
        let sh = shifts[self.shift_rot % shifts.len()] as i32;
        self.shift_rot += 1;
        let id = self.label_counter;
        self.label_counter += 1;
        let skip = format!("bs{id}");
        let join = format!("bj{id}");

        let src = self.last_tmp();
        self.b.srli(COND, src, sh);
        self.b.andi(COND, COND, mask);
        self.b.beq(COND, IntReg::ZERO, &skip);
        // Not-taken path: one chain op plus the join jump.
        let c1 = self.chain();
        self.b.addi(c1, c1, 5);
        self.b.j(&join);
        self.b.label(&skip);
        // Taken path: one chain op.
        let c2 = self.chain();
        self.b.xori(c2, c2, 0x0f);
        self.b.label(&join);

        // Expected dynamic: srli + andi + beq always; then taken path (1)
        // with probability p, not-taken path (2) otherwise.
        self.counts[1] += 3.0 + p_taken + 2.0 * (1.0 - p_taken);
        self.branches += 1.0;
    }

    fn emit_fp(&mut self, class: usize) {
        let c = self.fp_chain();
        match class {
            2 => {
                // Every fourth FP add consumes a loaded FP temp,
                // creating memory-to-FP dependences (fpppp-style).
                if self.fp_rot % 4 == 0 && self.p.mix.mem > 0.3 {
                    let t = FpReg::new(FIRST_FP_TMP + (self.fp_tmp_rot % 4) as u8);
                    self.b.fadd(c, c, t);
                } else {
                    self.b.fadd(c, c, FP_ADD_CONST);
                }
            }
            3 => {
                self.b.fmul(c, c, FP_MUL_CONST);
            }
            _ => {
                self.b.fdiv(c, c, FP_MUL_CONST);
            }
        }
        self.counts[class] += 1.0;
    }

    /// Emits the whole loop body by greedy largest-deficit scheduling.
    fn emit_body(&mut self) {
        let targets = [
            self.p.mix.mem,
            self.p.mix.int,
            self.p.mix.fp_add,
            self.p.mix.fp_mul,
            self.p.mix.fp_div,
        ];
        // Account for the loop-back overhead up front (addi + bne).
        self.counts[1] += 2.0;
        self.branches += 1.0;

        let mut divs_emitted = 0.0f64;
        while self.total() < BODY_TARGET {
            let total = self.total();
            // Largest-deficit class wins; classes with a zero target never
            // emit (ties would otherwise leak stray FP ops into integer
            // benchmarks), and ties break toward the earliest class.
            let (class, _) = targets
                .iter()
                .enumerate()
                .filter(|(_, t)| **t > 0.0)
                .map(|(i, t)| (i, t * total - self.counts[i]))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .expect("at least one nonzero target");
            match class {
                0 => self.emit_mem(),
                1 => {
                    if divs_emitted < self.p.serial_div_frac * total {
                        self.emit_serial_div();
                        divs_emitted += 1.0;
                    } else if self.branches < self.p.branch_frac * total {
                        self.emit_branch();
                    } else {
                        self.emit_chain_op();
                    }
                }
                c => self.emit_fp(c),
            }
        }
    }
}

/// Generates the program for `profile` with `iterations` loop passes.
///
/// # Panics
///
/// Panics if the profile is malformed (label collisions are impossible by
/// construction; builder errors indicate a generator bug).
pub(crate) fn generate(profile: &WorkloadProfile, iterations: u32) -> (Program, GeneratorReport) {
    assert!(iterations >= 1, "need at least one iteration");
    assert!(
        (1..=8).contains(&profile.chains),
        "integer chains must be 1..=8"
    );
    assert!(profile.fp_chains <= 6, "fp chains must be <= 6");
    assert!(
        profile.working_set.is_power_of_two(),
        "working set must be a power of two"
    );

    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let mut b = ProgramBuilder::new();

    // --- Data image ----------------------------------------------------
    // Pseudo-random working set (branch conditions read these values).
    let words = (profile.working_set / 8).min(1 << 20);
    let data: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
    b.data_u64(DATA_BASE, &data);
    // FP constants placed just past the working set.
    let const_base = DATA_BASE + profile.working_set as u64 + 64;
    b.data_f64(const_base, &[0.0009765625, 0.9999995]);
    let chain_inits: Vec<f64> = (0..6).map(|i| 1.0 + i as f64 * 0.125).collect();
    b.data_f64(const_base + 16, &chain_inits);

    // --- Prologue -------------------------------------------------------
    b.li(BASE, DATA_BASE as i64);
    b.addi(WOFF, IntReg::ZERO, 0);
    b.add(PTR, BASE, IntReg::ZERO);
    b.addi(DIV_ONE, IntReg::ZERO, 1);
    b.li(DIV_CHAIN, 1_000_001);
    for i in 0..profile.chains {
        b.addi(
            IntReg::new(FIRST_CHAIN + i as u8),
            IntReg::ZERO,
            (i as i32) * 7 + 3,
        );
    }
    // Pre-load the temps so branch conditions have data from cycle one.
    for i in 0..4 {
        b.ld(IntReg::new(FIRST_TMP + i), BASE, i as i32 * 8);
    }
    let cb = const_base as i64;
    let scratch = IntReg::new(13);
    b.li(scratch, cb);
    b.lfd(FP_ADD_CONST, scratch, 0);
    b.lfd(FP_MUL_CONST, scratch, 8);
    for i in 0..profile.fp_chains.max(1) {
        b.lfd(
            FpReg::new(FIRST_FP_CHAIN + i as u8),
            scratch,
            16 + i as i32 * 8,
        );
    }
    for i in 0..4 {
        b.lfd(FpReg::new(FIRST_FP_TMP + i), scratch, 16 + i as i32 * 8);
    }
    b.li(LOOP_CTR, i64::from(iterations));
    b.label("main_loop");

    // --- Body -----------------------------------------------------------
    let static_start = b.here();
    let mut em = Emitter {
        b,
        p: profile,
        rng,
        counts: [0.0; 5],
        branches: 0.0,
        mem_counter: 0,
        chain_rot: 0,
        fp_rot: 0,
        tmp_rot: 4, // prologue pre-loaded 4 temps
        fp_tmp_rot: 0,
        label_counter: 0,
        offset_slot: 0,
        shift_rot: 0,
    };
    em.emit_body();
    let Emitter {
        mut b,
        counts,
        branches,
        ..
    } = em;
    let static_body = b.here() - static_start;

    // --- Loop-back and epilogue -----------------------------------------
    b.addi(LOOP_CTR, LOOP_CTR, -1);
    b.bne(LOOP_CTR, IntReg::ZERO, "main_loop");
    // Fold every chain into a checksum past the working set, so all
    // computation is architecturally live and the oracle can verify it.
    let sink = IntReg::new(13);
    b.li(sink, (DATA_BASE + profile.working_set as u64 + 1024) as i64);
    let acc = IntReg::new(FIRST_CHAIN);
    for i in 1..profile.chains {
        b.add(acc, acc, IntReg::new(FIRST_CHAIN + i as u8));
    }
    b.add(acc, acc, DIV_CHAIN);
    b.sd(acc, sink, 0);
    if profile.fp_chains > 0 {
        let facc = FpReg::new(FIRST_FP_CHAIN);
        for i in 1..profile.fp_chains {
            b.fadd(facc, facc, FpReg::new(FIRST_FP_CHAIN + i as u8));
        }
        b.sfd(facc, sink, 8);
    }
    b.halt();

    let program = b.build().expect("generator produces valid labels");
    (
        program,
        GeneratorReport {
            expected: counts,
            branches,
            static_body,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::spec_profiles;

    #[test]
    fn reports_hit_table2_targets() {
        for p in spec_profiles() {
            let (_, report) = p.program_with_report(2);
            let names = ["mem", "int", "fp_add", "fp_mul", "fp_div"];
            let targets = [
                p.mix.mem,
                p.mix.int,
                p.mix.fp_add,
                p.mix.fp_mul,
                p.mix.fp_div,
            ];
            for i in 0..5 {
                let got = report.fraction(i);
                assert!(
                    (got - targets[i]).abs() < 0.03,
                    "{}: {} expected {:.3} got {:.3}",
                    p.name,
                    names[i],
                    targets[i],
                    got
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = &spec_profiles()[0];
        let a = p.program(3);
        let b = p.program(3);
        assert_eq!(a, b);
    }

    #[test]
    fn programs_run_to_halt_on_the_oracle() {
        use ftsim_isa::Emulator;
        for p in spec_profiles() {
            let prog = p.program(3);
            let mut emu = Emulator::new(&prog);
            let retired = emu
                .run(3_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(retired > 500, "{}: only {retired} instructions", p.name);
        }
    }

    #[test]
    fn dynamic_length_scales_with_iterations() {
        use ftsim_isa::Emulator;
        let p = &spec_profiles()[2]; // go
        let short = {
            let mut e = Emulator::new(&p.program(2));
            e.run(10_000_000).unwrap()
        };
        let long = {
            let mut e = Emulator::new(&p.program(8));
            e.run(10_000_000).unwrap()
        };
        let ratio = long as f64 / short as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn program_for_instructions_is_close() {
        use ftsim_isa::Emulator;
        let p = &spec_profiles()[4]; // ijpeg
        let prog = p.program_for_instructions(30_000);
        let mut e = Emulator::new(&prog);
        let retired = e.run(10_000_000).unwrap();
        assert!(
            (20_000..60_000).contains(&retired),
            "retired {retired} for a 30k request"
        );
    }

    #[test]
    fn working_set_is_touched_but_not_exceeded_much() {
        use ftsim_isa::Emulator;
        let p = spec_profiles()
            .into_iter()
            .find(|p| p.name == "ijpeg")
            .unwrap();
        let prog = p.program(8);
        let mut e = Emulator::new(&prog);
        e.run(10_000_000).unwrap();
        // Stores must stay inside [DATA_BASE, DATA_BASE + ws + 2KB).
        let hi = DATA_BASE + p.working_set as u64 + 2048;
        let pages = e.mem().page_count() as u64;
        assert!(pages * 4096 <= p.working_set as u64 + 16 * 4096);
        let _ = hi;
    }
}
