//! Graduated fuzz workloads: generated programs promoted to named,
//! sweepable workloads.
//!
//! The `ftsim-fuzz` loop occasionally surfaces a generated program worth
//! keeping — one that exercises a pipeline corner (deep return-address
//! nesting, dense aliasing) the hand-written kernels and Table 2 profiles
//! do not. Graduation freezes that program's [`FuzzSpec`] under a stable
//! name here, making it addressable from `ftsimd` job specs exactly like
//! a Table 2 profile (`ftsim-fuzz graduate <seed>` prints the entry to
//! paste into [`graduated_workloads`]).
//!
//! Because a [`FuzzSpec`] regenerates its program deterministically, the
//! registry stores only the spec — no program bytes are checked in, and
//! the workload can never drift from its generator.

use crate::fuzzgen::{FuzzProgram, FuzzSpec, FuzzVariant};

/// One graduated workload: a frozen [`FuzzSpec`] under a stable name.
#[derive(Debug, Clone)]
pub struct GraduatedWorkload {
    /// Stable registry name (`fuzz-` prefix by convention, so the names
    /// can never collide with Table 2 profiles).
    pub name: &'static str,
    /// The frozen generation plan.
    pub spec: FuzzSpec,
    /// Why this program graduated.
    pub note: &'static str,
}

impl GraduatedWorkload {
    /// Regenerates the workload's program and predictions.
    pub fn generate(&self) -> FuzzProgram {
        self.spec.generate()
    }
}

/// The curated registry, in stable order.
pub fn graduated_workloads() -> Vec<GraduatedWorkload> {
    vec![
        GraduatedWorkload {
            name: "fuzz-ras-7",
            spec: FuzzSpec {
                variant: FuzzVariant::RasDeep,
                seed: 7,
                iterations: 24,
                blocks: 10,
                keep: None,
            },
            note: "call chains up to six deep inside a hot loop; drives \
                   return-address-stack pushes/pops and link-register \
                   renaming far harder than any Table 2 profile",
        },
        GraduatedWorkload {
            name: "fuzz-alias-23",
            spec: FuzzSpec {
                variant: FuzzVariant::AliasHeavy,
                seed: 23,
                iterations: 28,
                blocks: 12,
                keep: None,
            },
            note: "computed-address loads and stores colliding on a small \
                   slot pool; exercises store-to-load forwarding and LSQ \
                   conflict parking every iteration",
        },
        GraduatedWorkload {
            name: "fuzz-div-41",
            spec: FuzzSpec {
                variant: FuzzVariant::SerialDiv,
                seed: 41,
                iterations: 20,
                blocks: 8,
                keep: None,
            },
            note: "serially dependent divide/remainder reconstruction \
                   chains; keeps the non-pipelined divider saturated so \
                   RobWait-site faults have long in-flight windows",
        },
    ]
}

/// Looks a graduated workload up by name.
pub fn graduated(name: &str) -> Option<GraduatedWorkload> {
    graduated_workloads().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::Emulator;

    #[test]
    fn registry_programs_generate_and_self_check() {
        let all = graduated_workloads();
        assert!(all.len() >= 2, "acceptance floor: two graduated programs");
        for g in &all {
            assert!(g.name.starts_with("fuzz-"), "{}: reserved prefix", g.name);
            let fp = g.generate();
            let mut emu = Emulator::new(&fp.program);
            let steps = emu.run(4 * fp.expected_retired + 10_000).unwrap();
            assert!(emu.halted(), "{} must halt", g.name);
            assert_eq!(steps, fp.expected_retired, "{}: retirement", g.name);
            assert_eq!(
                emu.mem().read_u64(fp.check_addr),
                fp.expected_checksum,
                "{}: checksum",
                g.name
            );
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let all = graduated_workloads();
        for g in &all {
            assert_eq!(graduated(g.name).unwrap().name, g.name);
        }
        let mut names: Vec<_> = all.iter().map(|g| g.name).collect();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(graduated("gcc").is_none());
    }
}
