//! Hand-written kernels used by examples and tests.

use ftsim_isa::{FpReg, IntReg, Program, ProgramBuilder, DATA_BASE};

/// Dot product of two `f64` vectors of length `n`, result stored at
/// `DATA_BASE + 16·n` and truncated into `r2`.
///
/// A compact FP workload: two streaming loads, one multiply and one add
/// per element — the classic FP-adder/multiplier pipeline exerciser.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use ftsim_isa::{Emulator, IntReg};
///
/// let p = ftsim_workloads::dot_product(8);
/// let mut e = Emulator::new(&p);
/// e.run(10_000).unwrap();
/// // a[i] = i+1, b[i] = 2 ⇒ dot = 2·Σ(i+1) = n(n+1)
/// assert_eq!(e.regs().read_int(IntReg::new(2)), 8 * 9);
/// ```
pub fn dot_product(n: u32) -> Program {
    assert!(n > 0, "vector length must be positive");
    let r1 = IntReg::new(1);
    let r2 = IntReg::new(2);
    let ra = IntReg::new(10);
    let rb = IntReg::new(11);
    let (fa, fb, facc, fprod) = (FpReg::new(1), FpReg::new(2), FpReg::new(3), FpReg::new(4));

    let mut b = ProgramBuilder::new();
    let a_base = DATA_BASE;
    let b_base = DATA_BASE + 8 * u64::from(n);
    let a: Vec<f64> = (0..n).map(|i| f64::from(i + 1)).collect();
    let bv: Vec<f64> = (0..n).map(|_| 2.0).collect();
    b.data_f64(a_base, &a);
    b.data_f64(b_base, &bv);

    b.li(ra, a_base as i64);
    b.li(rb, b_base as i64);
    b.li(r1, i64::from(n));
    b.fsub(facc, facc, facc); // acc = 0 (registers start at +0.0 bits)
    b.label("loop");
    b.lfd(fa, ra, 0);
    b.lfd(fb, rb, 0);
    b.fmul(fprod, fa, fb);
    b.fadd(facc, facc, fprod);
    b.addi(ra, ra, 8);
    b.addi(rb, rb, 8);
    b.addi(r1, r1, -1);
    b.bne(r1, IntReg::ZERO, "loop");
    b.sfd(facc, rb, 0); // one past b[] = DATA_BASE + 16n
    b.cvtfi(r2, facc);
    b.halt();
    b.build().expect("static labels")
}

/// Iterative Fibonacci: computes `fib(n) mod 2^64` into `r2` and stores the
/// full sequence to memory (a store-to-load forwarding exerciser).
///
/// # Examples
///
/// ```
/// use ftsim_isa::{Emulator, IntReg};
///
/// let p = ftsim_workloads::fibonacci(10);
/// let mut e = Emulator::new(&p);
/// e.run(10_000).unwrap();
/// assert_eq!(e.regs().read_int(IntReg::new(2)), 55);
/// ```
pub fn fibonacci(n: u32) -> Program {
    let (r1, r2, r3, r4, rp) = (
        IntReg::new(1),
        IntReg::new(2),
        IntReg::new(3),
        IntReg::new(4),
        IntReg::new(10),
    );
    let mut b = ProgramBuilder::new();
    b.li(rp, DATA_BASE as i64);
    b.addi(r2, IntReg::ZERO, 0); // fib(0)
    b.addi(r3, IntReg::ZERO, 1); // fib(1)
    b.li(r1, i64::from(n));
    b.beq(r1, IntReg::ZERO, "done");
    b.label("loop");
    b.add(r4, r2, r3); // next
    b.add(r2, r3, IntReg::ZERO);
    b.add(r3, r4, IntReg::ZERO);
    b.sd(r2, rp, 0);
    b.ld(r4, rp, 0); // immediately reload (forwarding path)
    b.addi(rp, rp, 8);
    b.addi(r1, r1, -1);
    b.bne(r1, IntReg::ZERO, "loop");
    b.label("done");
    b.halt();
    b.build().expect("static labels")
}

/// Pointer chase through a pseudo-randomly permuted ring of `nodes`
/// 64-byte-spaced cells, for `steps` hops — the classic cache/latency
/// micro-benchmark (every load depends on the previous one).
///
/// Final node index lands in `r2`.
///
/// # Panics
///
/// Panics if `nodes < 2`.
///
/// # Examples
///
/// ```
/// use ftsim_isa::Emulator;
///
/// let p = ftsim_workloads::pointer_chase(64, 100);
/// let mut e = Emulator::new(&p);
/// assert!(e.run(100_000).is_ok());
/// ```
pub fn pointer_chase(nodes: u32, steps: u32) -> Program {
    assert!(nodes >= 2, "need at least two nodes");
    let (r1, r2, rp) = (IntReg::new(1), IntReg::new(2), IntReg::new(10));
    let stride = 64u64;

    // Build a single-cycle permutation (ring) with an LCG-ish shuffle.
    let mut order: Vec<u32> = (0..nodes).collect();
    let mut state = 0x9e37_79b9u64;
    for i in (1..nodes as usize).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    // next[order[k]] = order[k+1]; closes into a ring.
    let mut next = vec![0u64; nodes as usize];
    for k in 0..nodes as usize {
        let cur = order[k] as usize;
        let nxt = order[(k + 1) % nodes as usize];
        next[cur] = DATA_BASE + u64::from(nxt) * stride;
    }

    let mut b = ProgramBuilder::new();
    for (i, &n) in next.iter().enumerate() {
        b.data_u64(DATA_BASE + i as u64 * stride, &[n]);
    }
    b.li(rp, DATA_BASE as i64);
    b.li(r1, i64::from(steps));
    b.label("chase");
    b.ld(rp, rp, 0); // p = *p — serial dependence
    b.addi(r1, r1, -1);
    b.bne(r1, IntReg::ZERO, "chase");
    // Recover the node index: (p - DATA_BASE) / 64.
    b.li(r2, DATA_BASE as i64);
    b.sub(r2, rp, r2);
    b.srli(r2, r2, 6);
    b.halt();
    b.build().expect("static labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::Emulator;

    #[test]
    fn dot_product_is_exact() {
        for n in [1u32, 3, 17, 64] {
            let p = dot_product(n);
            let mut e = Emulator::new(&p);
            e.run(1_000_000).unwrap();
            let expect = u64::from(n) * u64::from(n + 1);
            assert_eq!(e.regs().read_int(IntReg::new(2)), expect, "n={n}");
            let stored = f64::from_bits(e.mem().read_u64(DATA_BASE + 16 * u64::from(n)));
            assert_eq!(stored, expect as f64);
        }
    }

    #[test]
    fn fibonacci_values() {
        for (n, fib) in [(1u32, 1u64), (2, 1), (10, 55), (20, 6765), (0, 0)] {
            let p = fibonacci(n);
            let mut e = Emulator::new(&p);
            e.run(1_000_000).unwrap();
            assert_eq!(e.regs().read_int(IntReg::new(2)), fib, "fib({n})");
        }
    }

    #[test]
    fn pointer_chase_visits_ring() {
        // After exactly `nodes` steps the chase returns to node 0's
        // successor chain start — verify it lands somewhere valid, and
        // that full cycles return to the start node.
        let nodes = 16u32;
        let p = pointer_chase(nodes, nodes);
        let mut e = Emulator::new(&p);
        e.run(1_000_000).unwrap();
        let end = e.regs().read_int(IntReg::new(2));
        assert_eq!(end, 0, "a full cycle returns to node 0");
    }

    #[test]
    fn pointer_chase_partial_is_on_ring() {
        let p = pointer_chase(8, 3);
        let mut e = Emulator::new(&p);
        e.run(1_000_000).unwrap();
        assert!(e.regs().read_int(IntReg::new(2)) < 8);
    }
}
