//! Synthetic stand-ins for the paper's 11 SPEC95/SPEC2000 benchmarks.
//!
//! The paper evaluates on gcc, vortex, go, bzip, ijpeg, vpr, equake, ammp,
//! fpppp, swim and art, compiled to PISA and run for ~1 billion
//! instructions. Neither the binaries nor the toolchain are
//! redistributable, so this crate generates *synthetic* programs whose
//! dynamic behaviour is calibrated to what the paper reports about each
//! benchmark:
//!
//! * the **dynamic instruction mix** of Table 2 (`% mem / int / fp-add /
//!   fp-mul / fp-div`), hit within a small tolerance (measured by the
//!   `table2` experiment);
//! * the **bottleneck structure** of §5.2 — ammp is serialized by
//!   divisions on its critical path; go and vpr are ILP-limited (poorly
//!   predictable branches, short dependence chains) and thus nearly
//!   insensitive to resource halving; gcc/vortex/bzip/ijpeg/equake are
//!   resource-limited with plentiful ILP; fpppp/swim/art press on the
//!   single FP multiply/divide unit; swim streams through a large working
//!   set (RUU-limited).
//!
//! These are the properties that determine the *shape* of the paper's
//! Figure 5 (steady-state IPC of SS-1 / Static-2 / SS-2) and Figure 6
//! (fault-frequency response); absolute IPC values differ from the paper's
//! testbed, as expected for a reimplementation.
//!
//! # Examples
//!
//! ```
//! use ftsim_workloads::{profile, spec_profiles};
//!
//! assert_eq!(spec_profiles().len(), 11);
//! let gcc = profile("gcc").unwrap();
//! let program = gcc.program(50); // 50 loop iterations
//! assert!(program.len() > 100);
//! ```

#![warn(missing_docs)]

mod fuzzgen;
mod generator;
mod graduated;
mod kernels;
mod profile;

pub use fuzzgen::{FuzzProgram, FuzzSpec, FuzzVariant};
pub use generator::GeneratorReport;
pub use graduated::{graduated, graduated_workloads, GraduatedWorkload};
pub use kernels::{dot_product, fibonacci, pointer_chase};
pub use profile::{profile, spec_profiles, MixTargets, WorkloadProfile};
