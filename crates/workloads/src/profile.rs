//! The 11 benchmark profiles: Table 2 mixes plus behavioural knobs.

use ftsim_isa::Program;

/// Target dynamic instruction-mix fractions (the paper's Table 2 columns,
/// as fractions summing to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixTargets {
    /// Loads and stores.
    pub mem: f64,
    /// Integer operations (including branches).
    pub int: f64,
    /// FP add-class operations.
    pub fp_add: f64,
    /// FP multiplies.
    pub fp_mul: f64,
    /// FP divides.
    pub fp_div: f64,
}

impl MixTargets {
    /// Creates targets from Table 2 percentages.
    ///
    /// # Panics
    ///
    /// Panics unless the percentages sum to ≈100.
    pub fn from_percent(mem: f64, int: f64, fp_add: f64, fp_mul: f64, fp_div: f64) -> Self {
        let sum = mem + int + fp_add + fp_mul + fp_div;
        assert!(
            (sum - 100.0).abs() < 0.5,
            "mix percentages must sum to 100 (got {sum})"
        );
        Self {
            mem: mem / 100.0,
            int: int / 100.0,
            fp_add: fp_add / 100.0,
            fp_mul: fp_mul / 100.0,
            fp_div: fp_div / 100.0,
        }
    }

    /// Fraction of FP work of any kind.
    pub fn fp_total(&self) -> f64 {
        self.fp_add + self.fp_mul + self.fp_div
    }
}

/// A synthetic benchmark: Table 2 mix plus the knobs that shape its ILP,
/// branch behaviour, and memory locality.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (paper Table 2).
    pub name: &'static str,
    /// Originating suite, for reporting.
    pub suite: &'static str,
    /// Dynamic mix targets.
    pub mix: MixTargets,
    /// Independent integer dependence chains (more chains = more ILP).
    pub chains: usize,
    /// Independent FP dependence chains (0 for integer codes).
    pub fp_chains: usize,
    /// Fraction of dynamic instructions that are conditional branches.
    pub branch_frac: f64,
    /// Branch-condition bias: the branch tests `(value & mask) == 0` on a
    /// pseudo-random loaded value, so `mask = 1` gives 50/50 (hard to
    /// predict) and larger masks give biased, predictable branches.
    pub branch_bias_mask: u32,
    /// Working-set size in bytes (power of two); drives cache behaviour.
    pub working_set: usize,
    /// Bytes the access window advances per address update.
    pub stride: usize,
    /// Bytes of the window that are cycled over before repeating (power of
    /// two ≤ 2048); smaller spans mean more L1 reuse.
    pub reuse_span: usize,
    /// Memory operations between window advances; larger values mean more
    /// reuse per window.
    pub ops_per_window: usize,
    /// Fraction of instructions that are *serially dependent* integer
    /// divisions (the ammp critical-path knob, §5.2).
    pub serial_div_frac: f64,
    /// Whether loads feed the compute chains (memory-to-use dependences).
    pub load_consume: bool,
    /// Generation seed (fixed per profile for reproducibility).
    pub seed: u64,
}

impl WorkloadProfile {
    /// Generates the benchmark program with `iterations` passes over the
    /// main loop body (~300 dynamic instructions per iteration).
    ///
    /// Delegates to the [generator](crate::GeneratorReport); see
    /// [`WorkloadProfile::program_with_report`] for emission statistics.
    pub fn program(&self, iterations: u32) -> Program {
        self.program_with_report(iterations).0
    }

    /// As [`WorkloadProfile::program`], also returning the generator's
    /// emission report (expected dynamic mix).
    pub fn program_with_report(&self, iterations: u32) -> (Program, crate::GeneratorReport) {
        crate::generator::generate(self, iterations)
    }

    /// Generates a program sized to commit roughly `n` dynamic
    /// instructions before halting.
    pub fn program_for_instructions(&self, n: u64) -> Program {
        let per_iter = 300u64; // generator body target
        let iters = (n / per_iter).clamp(2, u32::MAX as u64) as u32;
        self.program(iters)
    }
}

/// The 11 benchmarks of the paper's Table 2, in the paper's order.
///
/// Mix percentages are Table 2 verbatim; the behavioural knobs encode the
/// paper's §5.2 characterization of each benchmark (see crate docs).
pub fn spec_profiles() -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile {
            name: "gcc",
            suite: "SPEC95 INT",
            mix: MixTargets::from_percent(74.55, 25.45, 0.0, 0.0, 0.0),
            chains: 4,
            fp_chains: 0,
            branch_frac: 0.035,
            branch_bias_mask: 15,
            working_set: 512 * 1024,
            stride: 8,
            reuse_span: 128,
            ops_per_window: 64,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x6763_6301,
        },
        WorkloadProfile {
            name: "vortex",
            suite: "SPEC95 INT",
            mix: MixTargets::from_percent(54.56, 45.44, 0.0, 0.0, 0.0),
            chains: 6,
            fp_chains: 0,
            branch_frac: 0.05,
            branch_bias_mask: 15,
            working_set: 256 * 1024,
            stride: 8,
            reuse_span: 128,
            ops_per_window: 96,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x766f_7201,
        },
        WorkloadProfile {
            name: "go",
            suite: "SPEC95 INT",
            mix: MixTargets::from_percent(29.49, 70.50, 0.0, 0.0, 0.0),
            chains: 2,
            fp_chains: 0,
            branch_frac: 0.16,
            branch_bias_mask: 1,
            working_set: 64 * 1024,
            stride: 8,
            reuse_span: 64,
            ops_per_window: 80,
            serial_div_frac: 0.0,
            load_consume: true,
            seed: 0x676f_0001,
        },
        WorkloadProfile {
            name: "bzip",
            suite: "SPEC2000 INT",
            mix: MixTargets::from_percent(29.84, 70.16, 0.0, 0.0, 0.0),
            chains: 8,
            fp_chains: 0,
            branch_frac: 0.04,
            branch_bias_mask: 31,
            working_set: 64 * 1024,
            stride: 8,
            reuse_span: 64,
            ops_per_window: 64,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x627a_6901,
        },
        WorkloadProfile {
            name: "ijpeg",
            suite: "SPEC95 INT",
            mix: MixTargets::from_percent(26.06, 73.94, 0.0, 0.0, 0.0),
            chains: 8,
            fp_chains: 0,
            branch_frac: 0.03,
            branch_bias_mask: 31,
            working_set: 32 * 1024,
            stride: 8,
            reuse_span: 256,
            ops_per_window: 32,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x696a_7001,
        },
        WorkloadProfile {
            name: "vpr",
            suite: "SPEC2000 INT",
            mix: MixTargets::from_percent(31.30, 63.61, 3.57, 1.38, 0.15),
            chains: 2,
            fp_chains: 1,
            branch_frac: 0.14,
            branch_bias_mask: 1,
            working_set: 128 * 1024,
            stride: 8,
            reuse_span: 128,
            ops_per_window: 64,
            serial_div_frac: 0.0,
            load_consume: true,
            seed: 0x7670_7201,
        },
        WorkloadProfile {
            name: "equake",
            suite: "SPEC2000 FP",
            mix: MixTargets::from_percent(34.55, 52.82, 6.06, 6.41, 0.16),
            chains: 6,
            fp_chains: 3,
            branch_frac: 0.04,
            branch_bias_mask: 15,
            working_set: 128 * 1024,
            stride: 8,
            reuse_span: 128,
            ops_per_window: 80,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x6571_7501,
        },
        WorkloadProfile {
            name: "ammp",
            suite: "SPEC2000 FP",
            mix: MixTargets::from_percent(41.35, 56.64, 1.49, 0.50, 0.02),
            chains: 3,
            fp_chains: 1,
            branch_frac: 0.06,
            branch_bias_mask: 63,
            working_set: 128 * 1024,
            stride: 8,
            reuse_span: 128,
            ops_per_window: 64,
            serial_div_frac: 0.035,
            load_consume: true,
            seed: 0x616d_6d01,
        },
        WorkloadProfile {
            name: "fpppp",
            suite: "SPEC95 FP",
            mix: MixTargets::from_percent(52.43, 15.03, 15.53, 16.84, 0.16),
            chains: 2,
            fp_chains: 5,
            branch_frac: 0.012,
            branch_bias_mask: 63,
            working_set: 64 * 1024,
            stride: 8,
            reuse_span: 256,
            ops_per_window: 128,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x6670_7001,
        },
        WorkloadProfile {
            name: "swim",
            suite: "SPEC95 FP",
            mix: MixTargets::from_percent(32.71, 37.41, 19.31, 10.12, 0.47),
            chains: 4,
            fp_chains: 6,
            branch_frac: 0.025,
            branch_bias_mask: 63,
            working_set: 4 * 1024 * 1024,
            stride: 8,
            reuse_span: 256,
            ops_per_window: 96,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x7377_6901,
        },
        WorkloadProfile {
            name: "art",
            suite: "SPEC2000 FP",
            mix: MixTargets::from_percent(35.29, 43.50, 11.07, 8.39, 1.36),
            chains: 4,
            fp_chains: 4,
            branch_frac: 0.04,
            branch_bias_mask: 31,
            working_set: 2 * 1024 * 1024,
            stride: 8,
            reuse_span: 256,
            ops_per_window: 64,
            serial_div_frac: 0.0,
            load_consume: false,
            seed: 0x6172_7401,
        },
    ]
}

/// Looks up one profile by benchmark name.
///
/// # Examples
///
/// ```
/// assert!(ftsim_workloads::profile("fpppp").is_some());
/// assert!(ftsim_workloads::profile("doom").is_none());
/// ```
pub fn profile(name: &str) -> Option<WorkloadProfile> {
    spec_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_profiles_in_paper_order() {
        let names: Vec<&str> = spec_profiles().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "gcc", "vortex", "go", "bzip", "ijpeg", "vpr", "equake", "ammp", "fpppp", "swim",
                "art"
            ]
        );
    }

    #[test]
    fn mixes_match_table2() {
        let gcc = profile("gcc").unwrap();
        assert!((gcc.mix.mem - 0.7455).abs() < 1e-9);
        let fpppp = profile("fpppp").unwrap();
        assert!((fpppp.mix.fp_mul - 0.1684).abs() < 1e-9);
        let art = profile("art").unwrap();
        assert!((art.mix.fp_div - 0.0136).abs() < 1e-9);
        for p in spec_profiles() {
            let sum = p.mix.mem + p.mix.int + p.mix.fp_total();
            // Table 2's own rounding leaves go at 99.99%.
            assert!((sum - 1.0).abs() < 5e-3, "{} mix sums to {sum}", p.name);
        }
    }

    #[test]
    fn working_sets_are_powers_of_two() {
        for p in spec_profiles() {
            assert!(p.working_set.is_power_of_two(), "{}", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_percentages_rejected() {
        let _ = MixTargets::from_percent(50.0, 20.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn int_benchmarks_have_no_fp_chains() {
        for name in ["gcc", "vortex", "go", "bzip", "ijpeg"] {
            let p = profile(name).unwrap();
            assert_eq!(p.fp_chains, 0, "{name}");
            assert_eq!(p.mix.fp_total(), 0.0, "{name}");
        }
    }
}
