//! Boundary-profile property tests: the generator must produce
//! halt-reaching, oracle-clean programs at the extreme corners of the
//! `MixTargets`/knob space — 0% memory, 100% fp-divide, one-iteration
//! bodies, and a working set of a single page — not just at the Table 2
//! operating points the 11 shipped profiles use.
//!
//! "Oracle-clean" is checked two ways for every generated program: the
//! in-order emulator reaches `halt` within a step cap, and a fault-free
//! pipelined run under `OracleMode::Final` completes without an oracle
//! divergence (the simulator returns an error if the out-of-order final
//! state disagrees with the in-order model).

use ftsim_core::{MachineConfig, OracleMode, Simulator};
use ftsim_isa::Emulator;
use ftsim_workloads::{MixTargets, WorkloadProfile};
use proptest::prelude::*;

/// Step cap for the in-order emulator; generously above anything a small
/// iteration count can retire (~330 dynamic instructions per iteration).
const STEP_CAP: u64 = 5_000_000;

/// Builds a boundary profile around the given mix and knobs, filling the
/// fields the edge cases do not vary.
fn edge(
    mix: MixTargets,
    chains: usize,
    fp_chains: usize,
    branch_frac: f64,
    working_set: usize,
    serial_div_frac: f64,
    seed: u64,
) -> WorkloadProfile {
    WorkloadProfile {
        name: "edge",
        suite: "edge",
        mix,
        chains,
        fp_chains,
        branch_frac,
        branch_bias_mask: 1, // hardest-to-predict branches
        working_set,
        stride: 8,
        reuse_span: 64,
        ops_per_window: 8,
        serial_div_frac,
        load_consume: true,
        seed,
    }
}

/// The shared property: the program halts on the in-order emulator, and a
/// fault-free pipelined run agrees with the oracle and retires the exact
/// same dynamic instruction count.
fn halts_and_is_oracle_clean(p: &WorkloadProfile, iterations: u32) -> Result<(), String> {
    let program = p.program(iterations);
    let mut emu = Emulator::new(&program);
    let retired = emu
        .run(STEP_CAP)
        .map_err(|e| format!("emulator error: {e}"))?;
    if !emu.halted() {
        return Err(format!("no halt within {STEP_CAP} steps"));
    }
    let result = Simulator::builder()
        .config(MachineConfig::ss2())
        .program(&program)
        .oracle(OracleMode::Final)
        .budget(retired + 16)
        .run()
        .map_err(|e| format!("pipelined run not oracle-clean: {e}"))?;
    if !result.halted {
        return Err("pipeline hit its budget before halt".into());
    }
    if result.retired_instructions != retired {
        return Err(format!(
            "pipeline retired {} but the oracle retired {retired}",
            result.retired_instructions
        ));
    }
    Ok(())
}

// --- Fixed spot checks at the exact corners named in the issue ----------

#[test]
fn zero_percent_mem_single_iteration_halts() {
    // No memory traffic at all: the body is pure integer work (with
    // branches and serial divides still mixed in), one iteration.
    let p = edge(
        MixTargets::from_percent(0.0, 100.0, 0.0, 0.0, 0.0),
        3,
        0,
        0.12,
        4096,
        0.02,
        0xedfe_0001,
    );
    halts_and_is_oracle_clean(&p, 1).unwrap();
}

#[test]
fn hundred_percent_fp_div_halts() {
    // The scheduler's only nonzero target is fp_div: a body of ~300
    // serially dependent divides on one FP chain (worst case for the
    // non-pipelined divider), single iteration.
    let p = edge(
        MixTargets::from_percent(0.0, 0.0, 0.0, 0.0, 100.0),
        1,
        1,
        0.0,
        4096,
        0.0,
        0xedfe_0002,
    );
    halts_and_is_oracle_clean(&p, 1).unwrap();
}

#[test]
fn one_page_working_set_mem_heavy_halts() {
    // gcc-shaped mix squeezed into a single 4 KiB page: every window
    // advance wraps inside one page, so loads and stores alias densely.
    let p = edge(
        MixTargets::from_percent(74.55, 25.45, 0.0, 0.0, 0.0),
        4,
        0,
        0.035,
        4096,
        0.0,
        0xedfe_0003,
    );
    halts_and_is_oracle_clean(&p, 1).unwrap();
    halts_and_is_oracle_clean(&p, 3).unwrap();
}

#[test]
fn fp_heavy_one_page_single_iteration_halts() {
    // All three FP classes plus memory in one page, one iteration, one
    // chain of each kind — the minimum-resource FP corner.
    let p = edge(
        MixTargets::from_percent(30.0, 10.0, 20.0, 20.0, 20.0),
        1,
        1,
        0.0,
        4096,
        0.0,
        0xedfe_0004,
    );
    halts_and_is_oracle_clean(&p, 1).unwrap();
}

// --- Property sweeps over the boundary region ---------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_mem_profiles_stay_oracle_clean(
        seed in 0u64..1 << 48,
        chains in 1usize..9,
        iters in 1u32..4,
    ) {
        let p = edge(
            MixTargets::from_percent(0.0, 100.0, 0.0, 0.0, 0.0),
            chains,
            0,
            0.1,
            4096,
            0.0,
            seed,
        );
        if let Err(e) = halts_and_is_oracle_clean(&p, iters) {
            prop_assert!(false, "seed {seed} chains {chains} iters {iters}: {e}");
        }
    }

    #[test]
    fn pure_fp_div_profiles_stay_oracle_clean(
        seed in 0u64..1 << 48,
        fp_chains in 1usize..7,
    ) {
        let p = edge(
            MixTargets::from_percent(0.0, 0.0, 0.0, 0.0, 100.0),
            1,
            fp_chains,
            0.0,
            4096,
            0.0,
            seed,
        );
        if let Err(e) = halts_and_is_oracle_clean(&p, 1) {
            prop_assert!(false, "seed {seed} fp_chains {fp_chains}: {e}");
        }
    }

    #[test]
    fn one_page_working_sets_stay_oracle_clean(
        seed in 0u64..1 << 48,
        mem_pct in 1u32..80,
        iters in 1u32..3,
    ) {
        let mem = f64::from(mem_pct);
        let p = edge(
            MixTargets::from_percent(mem, 100.0 - mem, 0.0, 0.0, 0.0),
            2,
            0,
            0.05,
            4096,
            0.0,
            seed,
        );
        if let Err(e) = halts_and_is_oracle_clean(&p, iters) {
            prop_assert!(false, "seed {seed} mem {mem_pct}% iters {iters}: {e}");
        }
    }
}
