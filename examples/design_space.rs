//! Design space: sweep the degree of redundancy R with one declarative
//! [`Experiment::grid`] — 11 workloads × 4 machine models, run across all
//! cores — and compare the simulated throughput cost of reliability
//! against the paper's analytical model (§4).
//!
//! The grid is *incremental*: its records are exported to
//! `target/experiments/design_space.csv`, and a re-run resumes from that
//! file, skipping every cell already simulated. Pass `--fresh` to ignore
//! the stored records and re-simulate everything.
//!
//! ```bash
//! cargo run --release --example design_space [--fresh]
//! ```

use ftsim::core::{MachineConfig, RedundancyConfig};
use ftsim::harness::{expect_record, load_resume_csv, save_csv, Experiment};
use ftsim::model::steady_state_ipc;
use ftsim::stats::{fmt_f, Table};
use ftsim::workloads::spec_profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = 30_000u64;
    let fresh = std::env::args().any(|a| a == "--fresh");
    println!("throughput cost of redundancy, simulated vs first-order model\n");

    let models: Vec<MachineConfig> = (1..=4u8)
        .map(|r| {
            MachineConfig::ss1()
                .with_redundancy(if r == 1 {
                    RedundancyConfig::none()
                } else {
                    RedundancyConfig::rewind(r)
                })
                .named(&format!("SS-{r}"))
        })
        .collect();

    let csv_path = "target/experiments/design_space.csv";
    let records = Experiment::grid()
        .workloads(spec_profiles())
        .models(models)
        .budget(budget)
        .resume_from(load_resume_csv(csv_path, fresh))
        .run()?;
    save_csv(csv_path, &records)?;

    let mut table = Table::new([
        "bench",
        "IPC R=1",
        "R=2",
        "R=3",
        "R=4",
        "model R=2",
        "model R=3",
        "model R=4",
    ]);
    table.numeric();

    for p in spec_profiles() {
        let ipcs: Vec<f64> = (1..=4u8)
            .map(|r| expect_record(&records, p.name, &format!("SS-{r}")).ipc)
            .collect();
        // First-order model: B is the effective bottleneck revealed by the
        // R=2 measurement (the paper estimates it from FU counts; here we
        // back-solve so the comparison shows the min(IPC1, B/R) *shape*).
        let ipc1 = ipcs[0];
        let b = (ipcs[1] * 2.0).min(ipc1 * 2.0);
        table.row([
            p.name.to_string(),
            fmt_f(ipcs[0], 2),
            fmt_f(ipcs[1], 2),
            fmt_f(ipcs[2], 2),
            fmt_f(ipcs[3], 2),
            fmt_f(steady_state_ipc(ipc1, b, 2), 2),
            fmt_f(steady_state_ipc(ipc1, b, 3), 2),
            fmt_f(steady_state_ipc(ipc1, b, 4), 2),
        ]);
    }
    print!("{table}");
    println!(
        "\nReading: applications with ILP to spare (go, vpr, ammp) ride the \
         min(IPC1, B/R) curve's flat region; saturated ones pay nearly the \
         full factor of R. The model tracks the simulation's shape, which is \
         all the paper claims for it (\u{00a7}4.1)."
    );
    Ok(())
}
