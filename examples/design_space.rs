//! Design space: sweep the degree of redundancy R as a **daemon job** —
//! 11 workloads × 4 machine models submitted as one `ftsimd` sweep spec,
//! drained in-process — and compare the simulated throughput cost of
//! reliability against the paper's analytical model (§4).
//!
//! The job is *persistent*: its state lives under
//! `target/experiments/ftsimd-state`, results stream to the job's
//! `cells.csv` as cells complete, and a re-run attaches to the finished
//! job instead of re-simulating (kill the example mid-sweep and run it
//! again — it resumes where it stopped). Pass `--fresh` to discard the
//! stored job and re-simulate everything.
//!
//! The same sweep can be driven from the command line:
//!
//! ```bash
//! cargo run --release --bin ftsimd -- submit design_space.toml --state target/experiments/ftsimd-state
//! cargo run --release --bin ftsimd -- serve --drain --state target/experiments/ftsimd-state
//! ```
//!
//! ```bash
//! cargo run --release --example design_space [--fresh]
//! ```

use ftsim::harness::{expect_record, from_csv};
use ftsim::model::steady_state_ipc;
use ftsim::stats::{fmt_f, Table};
use ftsim::workloads::spec_profiles;
use ftsim_daemon::{serve, JobSpec, JobStore, ServeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fresh = std::env::args().any(|a| a == "--fresh");
    println!("throughput cost of redundancy, simulated vs first-order model\n");

    // The sweep as a declarative job spec: every workload and model by
    // name (`SS-4` resolves through the generalized model registry).
    let mut spec = JobSpec::new("design-space");
    spec.workloads = spec_profiles().iter().map(|p| p.name.to_string()).collect();
    spec.models = (1..=4u8).map(|r| format!("SS-{r}")).collect();
    spec.budgets = vec![30_000];

    let store = JobStore::open("target/experiments/ftsimd-state")?;
    let (mut job_id, created) = store.submit(&spec)?;
    if !created {
        if fresh {
            store.remove(&job_id)?;
            job_id = store.submit(&spec)?.0;
            println!("--fresh: discarded stored job, re-simulating as {job_id}\n");
        } else {
            println!("attached to existing job {job_id} (pass --fresh to re-simulate)\n");
        }
    } else {
        println!("submitted job {job_id}\n");
    }

    // Drain the queue in-process (exactly what `ftsimd serve --drain`
    // does); an interrupted previous run resumes from its streamed rows.
    serve(
        &store,
        &ServeOptions {
            drain: true,
            ..Default::default()
        },
    )?;

    let job = store.job(&job_id)?;
    let records = from_csv(&std::fs::read_to_string(job.results_path())?)?;

    let mut table = Table::new([
        "bench",
        "IPC R=1",
        "R=2",
        "R=3",
        "R=4",
        "model R=2",
        "model R=3",
        "model R=4",
    ]);
    table.numeric();

    for p in spec_profiles() {
        let ipcs: Vec<f64> = (1..=4u8)
            .map(|r| expect_record(&records, p.name, &format!("SS-{r}")).ipc)
            .collect();
        // First-order model: B is the effective bottleneck revealed by the
        // R=2 measurement (the paper estimates it from FU counts; here we
        // back-solve so the comparison shows the min(IPC1, B/R) *shape*).
        let ipc1 = ipcs[0];
        let b = (ipcs[1] * 2.0).min(ipc1 * 2.0);
        table.row([
            p.name.to_string(),
            fmt_f(ipcs[0], 2),
            fmt_f(ipcs[1], 2),
            fmt_f(ipcs[2], 2),
            fmt_f(ipcs[3], 2),
            fmt_f(steady_state_ipc(ipc1, b, 2), 2),
            fmt_f(steady_state_ipc(ipc1, b, 3), 2),
            fmt_f(steady_state_ipc(ipc1, b, 4), 2),
        ]);
    }
    print!("{table}");
    println!(
        "\nReading: applications with ILP to spare (go, vpr, ammp) ride the \
         min(IPC1, B/R) curve's flat region; saturated ones pay nearly the \
         full factor of R. The model tracks the simulation's shape, which is \
         all the paper claims for it (\u{00a7}4.1)."
    );
    Ok(())
}
