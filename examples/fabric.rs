//! The sweep fabric, in-process: two jobs from two submitters at two
//! priorities are drained by two cooperating `serve` loops sharing one
//! state directory — the same claim/lease protocol N separate `ftsimd
//! serve` processes would speak — and the merged results are verified
//! byte-identical to one-shot `Experiment::grid()` runs.
//!
//! ```bash
//! cargo run --release --example fabric
//! ```

use ftsim::harness::to_csv;
use ftsim_daemon::{JobSpec, JobStore, ServeOptions};

fn spec(name: &str, submitter: &str, priority: i64) -> JobSpec {
    let mut spec = JobSpec::new(name);
    spec.workloads = vec!["fpppp".to_string(), "gcc".to_string()];
    spec.models = vec!["SS-2".to_string()];
    spec.fault_rates_pm = vec![0.0, 5_000.0];
    spec.budgets = vec![3_000];
    spec.seeds = vec![3];
    spec.submitter = submitter.to_string();
    spec.priority = priority;
    spec
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("ftsim-example-fabric-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = JobStore::open(&dir)?;

    // Two submitters; bob's job outranks alice's on priority, so the
    // fabric claims its families first.
    let jobs = [spec("alice-sweep", "alice", 0), spec("bob-rush", "bob", 5)];
    let ids: Vec<String> = jobs
        .iter()
        .map(|s| store.submit(s).map(|(id, _)| id))
        .collect::<Result<_, _>>()?;
    println!("submitted: {}", ids.join(", "));

    // Two drain loops on one store — stand-ins for two `ftsimd serve
    // --drain --workers 1` processes. Each claims a (workload, budget,
    // model) family at a time via lease files; neither steps on the
    // other, and both exit once no incomplete job remains.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let store = &store;
                scope.spawn(move || {
                    ftsim_daemon::serve(
                        store,
                        &ServeOptions {
                            drain: true,
                            workers: 1,
                            ..Default::default()
                        },
                    )
                })
            })
            .collect();
        for h in handles {
            h.join().expect("serve loop panicked")?;
        }
        Ok::<_, ftsim_daemon::DaemonError>(())
    })?;

    // The fabric's contract: cooperative execution changes wall time,
    // never a byte of the results.
    for (spec, id) in jobs.iter().zip(&ids) {
        let expected = to_csv(&spec.to_experiment()?.run()?);
        let job = store.job(id)?;
        let produced = std::fs::read_to_string(job.results_path())?;
        assert_eq!(produced, expected, "job {id} diverged from one-shot grid");
        println!(
            "job {id}: {} bytes, byte-identical to Experiment::grid() ✓",
            produced.len()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
