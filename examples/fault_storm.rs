//! Fault storm: bombard the fault-tolerant superscalar with transient
//! faults — injector, oracle mode and machine model all declared on the
//! simulator builder — and watch detection, recovery and (at R = 3)
//! majority election keep the architectural state exact.
//!
//! ```bash
//! cargo run --release --example fault_storm [faults_per_million]
//! ```

use ftsim::core::{MachineConfig, OracleMode, Simulator};
use ftsim::faults::{per_million, FaultInjector};
use ftsim::workloads::profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000.0); // 2000 faults per million instructions
    let bench = profile("equake").expect("profile exists");
    let program = bench.program(120);

    println!(
        "workload: synthetic {}, fault rate {rate} faults per million instructions\n",
        bench.name
    );

    for config in [
        MachineConfig::ss2(),
        MachineConfig::ss3(),
        MachineConfig::ss3_majority(),
    ] {
        let name = config.name.clone();
        let result = Simulator::builder()
            .config(config)
            .program(&program)
            .injector(FaultInjector::random(per_million(rate), 0xf00d))
            .oracle(OracleMode::Final)
            .run()?;
        let f = result.faults;
        println!("== {name} ==");
        println!("  IPC {:.3} over {} cycles", result.ipc, result.cycles);
        println!("  faults injected:          {}", f.injected);
        println!(
            "  detected at commit:       {} (full rewind each)",
            f.detected
        );
        println!("  out-voted by majority:    {}", f.outvoted);
        println!("  squashed on wrong path:   {}", f.squashed_wrong_path);
        println!("  flushed by other rewinds: {}", f.squashed_by_rewind);
        println!("  architecturally masked:   {}", f.masked);
        println!("  escaped to committed:     {}", f.escaped);
        println!(
            "  recoveries: {} fault rewinds, mean penalty {:.1} cycles (max {})",
            result.stats.fault_rewinds,
            result.stats.mean_rewind_penalty(),
            result.stats.rewind_penalty_max
        );
        println!("  final state == in-order oracle \u{2713}\n");
        assert_eq!(
            f.escaped, 0,
            "no fault may escape the sphere of replication"
        );
    }

    println!(
        "Every effective fault was either caught by the commit-stage cross-check \
         (triggering a rewind to the committed next-PC) or out-voted by the \
         2-of-3 majority — committed state stayed bit-exact throughout."
    );
    Ok(())
}
