//! Fault storm: bombard the fault-tolerant superscalar with transient
//! faults — one declarative [`Experiment::grid`] over the three redundant
//! machine models — and watch detection, recovery and (at R = 3) majority
//! election keep the architectural state exact.
//!
//! The grid runs with checkpoint-forking enabled: the three models share
//! their fault-free prefixes where the fault plan allows, without changing
//! a byte of any record. Results are exported to
//! `target/experiments/fault_storm.csv` and a re-run at the same rate
//! resumes from them; pass `--fresh` to re-simulate everything.
//!
//! ```bash
//! cargo run --release --example fault_storm [faults_per_million] [--fresh]
//! ```

use ftsim::core::{MachineConfig, OracleMode};
use ftsim::harness::{load_resume_csv, save_csv, Experiment};
use ftsim::workloads::profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000.0); // 2000 faults per million instructions
    let fresh = std::env::args().any(|a| a == "--fresh");
    let bench = profile("equake").expect("profile exists");
    let program = bench.program(120);

    println!(
        "workload: synthetic {}, fault rate {rate} faults per million instructions\n",
        bench.name
    );

    let csv_path = "target/experiments/fault_storm.csv";
    let prior = load_resume_csv(csv_path, fresh);
    let records = Experiment::grid()
        .workloads([("equake", program)])
        .models([
            MachineConfig::ss2(),
            MachineConfig::ss3(),
            MachineConfig::ss3_majority(),
        ])
        .fault_rates([rate])
        .seeds([0xf00d])
        .oracle(OracleMode::Final)
        .checkpointing(true)
        .resume_from(prior.clone())
        .run()?;
    // The rate is a CLI axis, so keep prior records from *other* rates
    // resumable: save the union, this run's records taking precedence.
    let mut saved = records.clone();
    saved.extend(
        prior
            .into_iter()
            .filter(|p| !records.iter().any(|r| r.same_identity(p))),
    );
    save_csv(csv_path, &saved)?;

    for r in &records {
        assert!(r.ok(), "{} failed: {}", r.model, r.error);
        println!("== {} ==", r.model);
        println!("  IPC {:.3} over {} cycles", r.ipc, r.cycles);
        println!("  faults injected:          {}", r.faults_injected);
        println!(
            "  detected at commit:       {} (full rewind each)",
            r.faults_detected
        );
        println!("  out-voted by majority:    {}", r.faults_outvoted);
        println!(
            "  squashed on wrong path:   {}",
            r.faults_squashed_wrong_path
        );
        println!(
            "  flushed by other rewinds: {}",
            r.faults_squashed_by_rewind
        );
        println!("  architecturally masked:   {}", r.faults_masked);
        println!("  escaped to committed:     {}", r.faults_escaped);
        println!(
            "  recoveries: {} fault rewinds, mean penalty {:.1} cycles (max {})",
            r.fault_rewinds, r.mean_rewind_penalty, r.rewind_penalty_max
        );
        println!("  final state == in-order oracle \u{2713}\n");
        assert_eq!(
            r.faults_escaped, 0,
            "no fault may escape the sphere of replication"
        );
    }

    println!(
        "Every effective fault was either caught by the commit-stage cross-check \
         (triggering a rewind to the committed next-PC) or out-voted by the \
         2-of-3 majority — committed state stayed bit-exact throughout."
    );
    Ok(())
}
