//! Fault storm: bombard the fault-tolerant superscalar with transient
//! faults — one `ftsimd` **daemon job** over the three redundant machine
//! models — and watch detection, recovery and (at R = 3) majority
//! election keep the architectural state exact.
//!
//! The job runs with checkpoint-forking enabled (the spec default): the
//! three models share their fault-free prefixes where the fault plan
//! allows, without changing a byte of any record. Job state persists
//! under `target/experiments/ftsimd-state`; each fault rate is its own
//! job (the rate is part of the spec), so sweeping several rates builds
//! up a resumable result set and re-running a rate attaches to its
//! finished job. Pass `--fresh` to discard this rate's stored job and
//! re-simulate.
//!
//! ```bash
//! cargo run --release --example fault_storm [faults_per_million] [--fresh]
//! ```

use ftsim::harness::from_csv;
use ftsim_core::OracleMode;
use ftsim_daemon::{serve, JobSpec, JobStore, ServeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000.0); // 2000 faults per million instructions
    let fresh = std::env::args().any(|a| a == "--fresh");

    println!("workload: synthetic equake, fault rate {rate} faults per million instructions\n");

    let mut spec = JobSpec::new(format!("fault-storm-{rate}pm"));
    spec.workloads = vec!["equake".to_string()];
    spec.models = vec!["SS-2".to_string(), "SS-3".to_string(), "SS-3M".to_string()];
    spec.fault_rates_pm = vec![rate];
    spec.budgets = vec![20_000];
    spec.seeds = vec![0xf00d];
    spec.oracle = OracleMode::Final;

    let store = JobStore::open("target/experiments/ftsimd-state")?;
    let (mut job_id, created) = store.submit(&spec)?;
    if !created && fresh {
        store.remove(&job_id)?;
        job_id = store.submit(&spec)?.0;
    } else if !created {
        println!("attached to existing job {job_id} (pass --fresh to re-simulate)\n");
    }
    serve(
        &store,
        &ServeOptions {
            drain: true,
            ..Default::default()
        },
    )?;

    let job = store.job(&job_id)?;
    let records = from_csv(&std::fs::read_to_string(job.results_path())?)?;

    for r in &records {
        assert!(r.ok(), "{} failed: {}", r.model, r.error);
        println!("== {} ==", r.model);
        println!("  IPC {:.3} over {} cycles", r.ipc, r.cycles);
        println!("  faults injected:          {}", r.faults_injected);
        println!(
            "  detected at commit:       {} (full rewind each)",
            r.faults_detected
        );
        println!("  out-voted by majority:    {}", r.faults_outvoted);
        println!(
            "  squashed on wrong path:   {}",
            r.faults_squashed_wrong_path
        );
        println!(
            "  flushed by other rewinds: {}",
            r.faults_squashed_by_rewind
        );
        println!("  architecturally masked:   {}", r.faults_masked);
        println!("  escaped to committed:     {}", r.faults_escaped);
        println!(
            "  recoveries: {} fault rewinds, mean penalty {:.1} cycles (max {})",
            r.fault_rewinds, r.mean_rewind_penalty, r.rewind_penalty_max
        );
        println!("  final state == in-order oracle \u{2713}\n");
        assert_eq!(
            r.faults_escaped, 0,
            "no fault may escape the sphere of replication"
        );
    }

    println!(
        "Every effective fault was either caught by the commit-stage cross-check \
         (triggering a rewind to the committed next-PC) or out-voted by the \
         2-of-3 majority — committed state stayed bit-exact throughout."
    );
    Ok(())
}
