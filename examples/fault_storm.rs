//! Fault storm: bombard the fault-tolerant superscalar with transient
//! faults — one `ftsimd` **daemon job** over the three redundant machine
//! models — and watch detection, recovery and (at R = 3) majority
//! election defend the architectural state.
//!
//! The job runs with checkpoint-forking enabled (the spec default): the
//! three models share their fault-free prefixes where the fault plan
//! allows, without changing a byte of any record. Job state persists
//! under `target/experiments/ftsimd-state`; each fault rate is its own
//! job (the rate is part of the spec), so sweeping several rates builds
//! up a resumable result set and re-running a rate attaches to its
//! finished job. Pass `--fresh` to discard this rate's stored job and
//! re-simulate.
//!
//! The storm sweeps the fault-site axis too — a uniform mix and the
//! `addr-heavy`/`control-only` presets — and finishes with the
//! `ftsim-analysis` report over the job's records: outcome taxonomy,
//! per-site sensitivity with Wilson intervals, detection latency, and
//! MTTF extrapolation (the same tables `ftsimd report <job>` prints).
//!
//! One honest caveat the analysis makes visible (§2.2 of the paper): a
//! load performs **one** shared memory access for all `R` copies, so a
//! transient that corrupts the loaded value at that single point hands
//! every copy the same wrong data — indiscernible to any degree of
//! replication. Such faults are rare but real; the outcome classifier
//! pins them as `sdc` by comparing each cell's final-state digest
//! against its family's fault-free baseline, instead of this example
//! pretending they cannot happen.
//!
//! ```bash
//! cargo run --release --example fault_storm [faults_per_million] [--fresh]
//! ```

use ftsim::harness::from_csv;
use ftsim_analysis::{analyze_records, CellOutcome};
use ftsim_daemon::{serve, JobSpec, JobStore, ServeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000.0); // 2000 faults per million instructions
    let fresh = std::env::args().any(|a| a == "--fresh");

    println!("workload: synthetic equake, fault rate {rate} faults per million instructions\n");

    let mut spec = JobSpec::new(format!("fault-storm-{rate}pm"));
    spec.workloads = vec!["equake".to_string()];
    spec.models = vec!["SS-2".to_string(), "SS-3".to_string(), "SS-3M".to_string()];
    // Rate 0 rides along: it is each family's checkpoint-fork baseline
    // anyway, and its records anchor the analysis layer's SDC
    // classification (final-state digest vs. the fault-free run).
    spec.fault_rates_pm = vec![0.0, rate];
    spec.site_mixes = vec![
        "uniform".to_string(),
        "addr-heavy".to_string(),
        "control-only".to_string(),
    ];
    spec.budgets = vec![20_000];
    spec.seeds = vec![0xf00d];

    let store = JobStore::open("target/experiments/ftsimd-state")?;
    let (mut job_id, created) = store.submit(&spec)?;
    if !created && fresh {
        store.remove(&job_id)?;
        job_id = store.submit(&spec)?.0;
    } else if !created {
        println!("attached to existing job {job_id} (pass --fresh to re-simulate)\n");
    }
    serve(
        &store,
        &ServeOptions {
            drain: true,
            ..Default::default()
        },
    )?;

    let job = store.job(&job_id)?;
    let records = from_csv(&std::fs::read_to_string(job.results_path())?)?;
    let report = analyze_records(&records);

    for (r, outcome) in records.iter().zip(&report.outcomes) {
        assert!(r.ok(), "{} failed: {}", r.model, r.error);
        if r.faults_injected == 0 {
            continue; // the fault-free baselines only anchor the digests
        }
        println!("== {} (site mix: {}) ==", r.model, r.site_mix);
        println!("  IPC {:.3} over {} cycles", r.ipc, r.cycles);
        println!("  faults injected:          {}", r.faults_injected);
        println!(
            "  detected at commit:       {} (full rewind each)",
            r.faults_detected
        );
        println!("  out-voted by majority:    {}", r.faults_outvoted);
        println!(
            "  squashed on wrong path:   {}",
            r.faults_squashed_wrong_path
        );
        println!(
            "  flushed by other rewinds: {}",
            r.faults_squashed_by_rewind
        );
        println!("  architecturally masked:   {}", r.faults_masked);
        println!("  escaped to committed:     {}", r.faults_escaped);
        println!(
            "  recoveries: {} fault rewinds, mean penalty {:.1} cycles (max {})",
            r.fault_rewinds, r.mean_rewind_penalty, r.rewind_penalty_max
        );
        match outcome {
            CellOutcome::Sdc => println!(
                "  !! silent data corruption: final state diverged from the \
                 fault-free baseline\n     (shared-load-data corruption — the \
                 indiscernible case of §2.2)\n"
            ),
            o => println!(
                "  outcome: {} — final state matches the fault-free baseline\n",
                o.label()
            ),
        }
    }

    let sdc = report.outcome_count(CellOutcome::Sdc);
    println!(
        "Every fault that made copies disagree was caught by the commit-stage \
         cross-check (rewind to the committed next-PC) or out-voted by the \
         2-of-3 majority. {} cell(s) suffered silent corruption through the \
         one value replication cannot cover: the single shared load access.\n",
        sdc
    );

    // The same analysis `ftsimd report <job>` would print for this job.
    print!("{}", report.render());
    Ok(())
}
