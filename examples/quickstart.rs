//! Quickstart: assemble a small program, run it through the simulator
//! builder on the plain superscalar (SS-1) and on the fault-tolerant
//! 2-way redundant configuration (SS-2), and compare.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ftsim::core::{MachineConfig, Simulator};
use ftsim::isa::asm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little kernel: sum of squares 1..=50, kept in memory as it goes.
    let program = asm::assemble(
        r"
            li   r10, 0x100000     ; data base
            addi r1, r0, 50        ; n
            addi r2, r0, 0         ; acc
        loop:
            mul  r3, r1, r1
            add  r2, r2, r3
            sd   r2, 0(r10)
            addi r10, r10, 8
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        ",
    )?;

    println!("program: {} static instructions\n", program.len());

    for config in [MachineConfig::ss1(), MachineConfig::ss2()] {
        let name = config.name.clone();
        let r = config.redundancy.r;
        let result = Simulator::builder()
            .config(config)
            .program(&program)
            .run()?;
        println!("== {name} (R = {r}) ==");
        println!(
            "  {} instructions in {} cycles -> IPC {:.3}",
            result.retired_instructions, result.cycles, result.ipc
        );
        println!(
            "  branches {} (mispredicted {:.1}%), RUU entries retired {}",
            result.stats.branches,
            result.stats.mispredict_rate() * 100.0,
            result.stats.retired_entries,
        );
        println!("  final state verified against the in-order oracle \u{2713}\n");
    }

    println!(
        "The redundant configuration executes every instruction twice on the \
         same hardware and cross-checks the copies at commit; the loop above \
         has little instruction-level parallelism to spare, so expect a \
         visible (but far less than 2x) slowdown."
    );
    Ok(())
}
