//! Workload tour: print the 11 synthetic SPEC stand-ins with their
//! Table 2 mixes and behavioural knobs, then run the three hand-written
//! kernels on the fault-tolerant machine via the simulator builder.
//!
//! ```bash
//! cargo run --release --example workload_tour
//! ```

use ftsim::core::{MachineConfig, Simulator};
use ftsim::stats::{fmt_pct, Table};
use ftsim::workloads::{dot_product, fibonacci, pointer_chase, spec_profiles};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The 11 benchmarks of the paper's Table 2, as synthetic profiles:\n");
    let mut t = Table::new([
        "bench",
        "suite",
        "mem",
        "int",
        "fpadd",
        "fpmul",
        "fpdiv",
        "ILP chains",
        "branches",
        "working set",
    ]);
    t.numeric();
    for p in spec_profiles() {
        t.row([
            p.name.to_string(),
            p.suite.to_string(),
            fmt_pct(p.mix.mem),
            fmt_pct(p.mix.int),
            fmt_pct(p.mix.fp_add),
            fmt_pct(p.mix.fp_mul),
            fmt_pct(p.mix.fp_div),
            format!("{}+{}fp", p.chains, p.fp_chains),
            fmt_pct(p.branch_frac),
            format!("{}K", p.working_set / 1024),
        ]);
    }
    print!("{t}");

    println!("\nHand-written kernels on the R=2 fault-tolerant machine:\n");
    for (name, program, what) in [
        (
            "dot_product(64)",
            dot_product(64),
            "streaming FP multiply-accumulate",
        ),
        (
            "fibonacci(40)",
            fibonacci(40),
            "serial integer chain with store-to-load forwarding",
        ),
        (
            "pointer_chase(128, 2000)",
            pointer_chase(128, 2000),
            "dependent loads (memory latency exposed)",
        ),
    ] {
        let result = Simulator::builder()
            .config(MachineConfig::ss2())
            .program(&program)
            .run()?;
        println!(
            "  {name:<26} {what:<48} IPC {:.3} ({} insts, {} cycles)",
            result.ipc, result.retired_instructions, result.cycles
        );
    }
    println!("\nAll runs verified against the in-order oracle \u{2713}");
    Ok(())
}
