//! `ftsimd` — the long-running sweep daemon. All behaviour lives in
//! [`ftsim_daemon::cli`]; this file only owns the process boundary.
//! (The target is declared by the `ftsim-daemon` crate, which points at
//! this path; it cannot belong to the root `ftsim` package because the
//! daemon depends on `ftsim`.)

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ftsim_daemon::cli::run(&args));
}
