//! Declarative sweep grids and the parallel cell runner.

use crate::harness::record::RunRecord;
use ftsim_core::{Checkpoint, ConfigError, MachineConfig, OracleMode, RunLimits, Simulator};
use ftsim_faults::{per_million, FaultInjector};
use ftsim_isa::Program;
use ftsim_workloads::WorkloadProfile;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default committed-instruction budget per cell (the experiments'
/// standard sample size; the paper simulates 1 B instructions, whose
/// steady-state shape is stable well below that).
pub const DEFAULT_BUDGET: u64 = 60_000;

/// Smallest first-possible-injection draw index for which running a
/// *dedicated* family baseline (one that serves no fault-free cell of its
/// own) pays for itself. Families containing a fault-free cell always run
/// the baseline — it *is* that cell's simulation.
const MIN_WORTHWHILE_FORK_DRAWS: u64 = 4_096;

/// Checkpoint spacing for a family baseline, in cycles: fine enough that
/// the skipped prefix tracks each cell's divergence point closely, coarse
/// enough that snapshot cost stays a small fraction of the run.
fn checkpoint_interval(budget: u64) -> u64 {
    (budget / 32).clamp(256, 8_192)
}

/// One workload axis entry: a calibrated benchmark profile or an ad-hoc
/// named program.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A Table 2-calibrated synthetic benchmark.
    Profile(WorkloadProfile),
    /// A fixed program under a display name (budget still limits the run,
    /// but the program is used as-is).
    Program {
        /// Display name for records.
        name: String,
        /// The program to run.
        program: Program,
    },
}

impl Workload {
    /// Display name for records.
    pub fn name(&self) -> &str {
        match self {
            Workload::Profile(p) => p.name,
            Workload::Program { name, .. } => name,
        }
    }

    /// Suite label for records (empty for ad-hoc programs).
    pub fn suite(&self) -> &str {
        match self {
            Workload::Profile(p) => p.suite,
            Workload::Program { .. } => "",
        }
    }

    /// The program to simulate for a given instruction budget.
    fn program_for(&self, budget: u64) -> Program {
        match self {
            Workload::Profile(p) => p.program_for_instructions(budget),
            Workload::Program { program, .. } => program.clone(),
        }
    }
}

impl From<WorkloadProfile> for Workload {
    fn from(p: WorkloadProfile) -> Self {
        Workload::Profile(p)
    }
}

impl From<(&str, Program)> for Workload {
    fn from((name, program): (&str, Program)) -> Self {
        Workload::Program {
            name: name.to_string(),
            program,
        }
    }
}

/// Grid misconfiguration, reported by [`Experiment::run`] before any cell
/// simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The workload axis is empty.
    NoWorkloads,
    /// The model axis is empty.
    NoModels,
    /// An axis that must be non-empty was set to nothing.
    EmptyAxis {
        /// Which axis (`"budgets"`, `"seeds"`, `"fault_rates"`).
        axis: &'static str,
    },
    /// A machine model fails validation.
    InvalidModel {
        /// The model's display name.
        model: String,
        /// The violated invariant.
        source: ConfigError,
    },
    /// A fault rate outside `[0, 1e6]` faults per million instructions.
    InvalidFaultRate(f64),
    /// A zero instruction budget.
    ZeroBudget,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::NoWorkloads => write!(f, "experiment has no workloads"),
            ExperimentError::NoModels => write!(f, "experiment has no machine models"),
            ExperimentError::EmptyAxis { axis } => {
                write!(f, "experiment axis `{axis}` was set to an empty list")
            }
            ExperimentError::InvalidModel { model, source } => {
                write!(f, "invalid machine model `{model}`: {source}")
            }
            ExperimentError::InvalidFaultRate(rate) => write!(
                f,
                "fault rate {rate} per million instructions is not in [0, 1e6]"
            ),
            ExperimentError::ZeroBudget => write!(f, "instruction budget must be nonzero"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::InvalidModel { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A declarative experiment grid: workloads × models × fault rates ×
/// budgets × seeds, executed cell-by-cell on a thread pool.
///
/// Cells are enumerated with the workload as the outermost axis and the
/// seed as the innermost, and the result vector always comes back in that
/// order regardless of how many worker threads ran it — the records of a
/// parallel run are byte-identical to a sequential one.
///
/// # Examples
///
/// A miniature of the paper's Figure 5 sweep (three machine models over
/// benchmarks, fault-free):
///
/// ```
/// use ftsim::harness::Experiment;
/// use ftsim_core::MachineConfig;
/// use ftsim_workloads::profile;
///
/// let records = Experiment::grid()
///     .workloads([profile("go").unwrap()])
///     .models([MachineConfig::ss1(), MachineConfig::static2(), MachineConfig::ss2()])
///     .budget(2_000)
///     .run()
///     .unwrap();
/// let names: Vec<&str> = records.iter().map(|r| r.model.as_str()).collect();
/// assert_eq!(names, ["SS-1", "Static-2", "SS-2"]);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    workloads: Vec<Workload>,
    models: Vec<MachineConfig>,
    fault_rates_pm: Vec<f64>,
    budgets: Vec<u64>,
    seeds: Vec<u64>,
    oracle: OracleMode,
    threads: usize,
    limits: Option<RunLimits>,
    checkpointing: bool,
    prior: Vec<RunRecord>,
}

impl Experiment {
    /// Starts an empty grid: no workloads or models yet, fault-free,
    /// [`DEFAULT_BUDGET`], seed 0, oracle off, one worker per core.
    /// Checkpoint-forking (see [`Experiment::checkpointing`]) defaults to
    /// off unless the `FTSIM_CHECKPOINT_FORK` environment variable is set.
    pub fn grid() -> Self {
        Self {
            workloads: Vec::new(),
            models: Vec::new(),
            fault_rates_pm: vec![0.0],
            budgets: vec![DEFAULT_BUDGET],
            seeds: vec![0],
            oracle: OracleMode::Off,
            threads: 0,
            limits: None,
            checkpointing: std::env::var_os("FTSIM_CHECKPOINT_FORK").is_some(),
            prior: Vec::new(),
        }
    }

    /// Sets the workload axis (benchmark profiles and/or named programs).
    #[must_use]
    pub fn workloads<I, W>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = W>,
        W: Into<Workload>,
    {
        self.workloads = workloads.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the machine-model axis.
    #[must_use]
    pub fn models<I: IntoIterator<Item = MachineConfig>>(mut self, models: I) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Sets the fault-frequency axis, in faults per million instructions
    /// (Figure 6's x-axis unit). Default: fault-free.
    #[must_use]
    pub fn fault_rates<I: IntoIterator<Item = f64>>(mut self, rates_pm: I) -> Self {
        self.fault_rates_pm = rates_pm.into_iter().collect();
        self
    }

    /// Sets the committed-instruction budget axis. Default:
    /// [`DEFAULT_BUDGET`].
    #[must_use]
    pub fn budgets<I: IntoIterator<Item = u64>>(mut self, budgets: I) -> Self {
        self.budgets = budgets.into_iter().collect();
        self
    }

    /// Convenience: a single-budget axis.
    #[must_use]
    pub fn budget(self, budget: u64) -> Self {
        self.budgets(Some(budget))
    }

    /// Sets the fault-injector seed axis (one cell per seed — used to
    /// retry stochastic sweeps with fresh seeds). Default: `[0]`.
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the oracle mode for every cell. Default: [`OracleMode::Off`]
    /// (performance sweeps).
    #[must_use]
    pub fn oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        self
    }

    /// Caps the worker-thread count; `0` (default) uses one worker per
    /// available core.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-cell cycle/watchdog limits (default: derived
    /// from each cell's budget, with a proportionate cycle ceiling).
    /// The instruction limit is still capped at each cell's budget, so
    /// the budgets axis keeps meaning what the records say.
    #[must_use]
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Enables or disables checkpoint-forking (prefix sharing).
    ///
    /// When enabled, each grid *family* — the cells sharing a (workload,
    /// model, budget) and differing only in fault rate and seed — runs one
    /// fault-free baseline that drops periodic machine checkpoints
    /// ([`Simulator::run_with_checkpoints`]). The baseline's result serves
    /// every fault-free cell directly, and each faulty cell *forks*: it
    /// restores the newest checkpoint taken at or before its injector's
    /// first possible fault
    /// ([`FaultInjector::first_possible_fire`]) and simulates only the
    /// post-divergence suffix. Records are byte-identical to cold-start
    /// runs — forking changes wall-clock cost, never results.
    ///
    /// Default: the `FTSIM_CHECKPOINT_FORK` environment variable.
    #[must_use]
    pub fn checkpointing(mut self, enabled: bool) -> Self {
        self.checkpointing = enabled;
        self
    }

    /// Provides records from a previous run (e.g. parsed from an exported
    /// CSV with [`crate::harness::from_csv`]); cells whose identity —
    /// workload, model, redundancy, fault rate, seed, budget — matches a
    /// *successful* prior record are not re-simulated, and the prior
    /// record is returned in the cell's grid slot instead. Failed prior
    /// records are re-run.
    ///
    /// Caveat: records do not carry the oracle mode or run-limit
    /// overrides they were produced under, so resumption assumes the
    /// prior run used the same [`Experiment::oracle`] and
    /// [`Experiment::limits`] settings as this grid. Feeding records
    /// from an [`OracleMode::Off`] sweep into an
    /// [`OracleMode::Final`] grid returns them unverified — re-run
    /// fresh when the verification level changed.
    #[must_use]
    pub fn resume_from<I: IntoIterator<Item = RunRecord>>(mut self, prior: I) -> Self {
        self.prior.extend(prior);
        self
    }

    /// Number of grid cells this experiment will run.
    pub fn cells(&self) -> usize {
        self.workloads.len()
            * self.models.len()
            * self.fault_rates_pm.len()
            * self.budgets.len()
            * self.seeds.len()
    }

    fn validate(&self) -> Result<(), ExperimentError> {
        if self.workloads.is_empty() {
            return Err(ExperimentError::NoWorkloads);
        }
        if self.models.is_empty() {
            return Err(ExperimentError::NoModels);
        }
        for (axis, empty) in [
            ("fault_rates", self.fault_rates_pm.is_empty()),
            ("budgets", self.budgets.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            if empty {
                return Err(ExperimentError::EmptyAxis { axis });
            }
        }
        for model in &self.models {
            model
                .validate()
                .map_err(|source| ExperimentError::InvalidModel {
                    model: model.name.clone(),
                    source,
                })?;
        }
        for &rate in &self.fault_rates_pm {
            if !(0.0..=1e6).contains(&rate) || rate.is_nan() {
                return Err(ExperimentError::InvalidFaultRate(rate));
            }
        }
        if self.budgets.contains(&0) {
            return Err(ExperimentError::ZeroBudget);
        }
        Ok(())
    }

    /// Validates the grid and runs every cell, fanning out across worker
    /// threads; records come back in grid order (workload-major,
    /// seed-minor), identical for any worker count.
    ///
    /// With [`Experiment::checkpointing`] enabled the runner shares each
    /// family's fault-free prefix (see that method's docs); with
    /// [`Experiment::resume_from`] records, already-simulated cells are
    /// returned as-is. Neither changes a single byte of any record — only
    /// how much work producing them costs.
    ///
    /// A cell whose *simulation* fails (wedged machine, cycle-budget
    /// overrun — possible at extreme fault rates) produces a record with
    /// [`RunRecord::ok`]` == false` rather than aborting the sweep.
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] when the grid itself is misconfigured.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a simulator bug, not an
    /// experiment failure).
    pub fn run(self) -> Result<Vec<RunRecord>, ExperimentError> {
        self.validate()?;

        // Generate each distinct (workload, budget) program once, up
        // front, behind an `Arc`: cells share the image by reference
        // count instead of deep-copying instructions and data per cell.
        let programs: Vec<Vec<Arc<Program>>> = self
            .workloads
            .iter()
            .map(|w| {
                self.budgets
                    .iter()
                    .map(|&b| Arc::new(w.program_for(b)))
                    .collect()
            })
            .collect();

        // The flattened cell list, in deterministic grid order.
        let mut cells = Vec::with_capacity(self.cells());
        for (wi, _) in self.workloads.iter().enumerate() {
            for (mi, _) in self.models.iter().enumerate() {
                for &rate_pm in &self.fault_rates_pm {
                    for (bi, &budget) in self.budgets.iter().enumerate() {
                        for &seed in &self.seeds {
                            cells.push(Cell {
                                workload: wi,
                                budget_idx: bi,
                                model: mi,
                                rate_pm,
                                budget,
                                seed,
                            });
                        }
                    }
                }
            }
        }

        // Cells already present in the prior records are not re-simulated.
        let resumed: Vec<Option<RunRecord>> = cells
            .iter()
            .map(|cell| {
                let id = self.cell_identity(cell);
                self.prior
                    .iter()
                    .find(|p| p.ok() && p.same_identity(&id))
                    .cloned()
            })
            .collect();

        let workers = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(cells.len())
        .max(1);

        // Fork bounds, computed once per live faulty cell (the scan
        // replays the injector's Bernoulli stream, so it is worth caching
        // between the planning pass and the cell run).
        let bounds: Vec<Option<u64>> = if self.checkpointing {
            cells
                .iter()
                .zip(&resumed)
                .map(|(cell, resumed)| {
                    (resumed.is_none() && cell.rate_pm > 0.0).then(|| self.cell_fork_bound(cell))
                })
                .collect()
        } else {
            vec![None; cells.len()]
        };
        let families = if self.checkpointing {
            self.plan_families(&cells, &resumed, &bounds)
        } else {
            Vec::new()
        };

        // Wave 1: family baselines (checkpoint producers), in parallel.
        let pool = |n_tasks: usize, task: &(dyn Fn(usize) + Sync)| {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers.min(n_tasks).max(1) {
                    scope.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_tasks {
                            break;
                        }
                        task(idx);
                    });
                }
            });
        };
        pool(families.len(), &|fi| {
            let f = &families[fi];
            let (outcome, checkpoints) = self.run_baseline(f, &programs);
            let mut slot = f.baseline.lock().expect("family lock");
            *slot = Some((outcome, checkpoints));
        });

        // Wave 2: every cell, in parallel — resumed, baseline-served,
        // forked or cold.
        let family_of = |cell: &Cell| {
            families
                .iter()
                .find(|f| (f.workload, f.budget_idx, f.model) == cell.family_key())
        };
        let slots: Vec<Mutex<Option<RunRecord>>> = cells.iter().map(|_| Mutex::new(None)).collect();
        pool(cells.len(), &|idx| {
            let cell = &cells[idx];
            let record = if let Some(prior) = &resumed[idx] {
                prior.clone()
            } else {
                self.run_cell(cell, family_of(cell), bounds[idx], &programs)
            };
            *slots[idx].lock().expect("slot lock") = Some(record);
        });

        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every cell ran")
            })
            .collect())
    }

    /// The identity half of a cell's record (used for resume matching and
    /// as the base of the final record).
    fn cell_identity(&self, cell: &Cell) -> RunRecord {
        let workload = &self.workloads[cell.workload];
        RunRecord::identity(
            workload.name(),
            workload.suite(),
            &self.models[cell.model],
            cell.rate_pm,
            cell.seed,
            cell.budget,
        )
    }

    /// The builder every run of a (workload, budget, model) coordinate
    /// starts from — config, shared program, oracle mode, and the cell's
    /// budget with any blanket limits override adjusting ceilings but
    /// never repealing the budgets axis. Baseline, forked and cold paths
    /// all go through here so they cannot drift apart; callers add only
    /// the injector.
    fn cell_builder(
        &self,
        workload: usize,
        budget_idx: usize,
        model: usize,
        budget: u64,
        programs: &[Vec<Arc<Program>>],
    ) -> ftsim_core::SimBuilder {
        let builder = Simulator::builder()
            .config(self.models[model].clone())
            .program_shared(Arc::clone(&programs[workload][budget_idx]))
            .oracle(self.oracle)
            .budget(budget);
        match self.limits {
            Some(limits) => builder.limits(RunLimits {
                max_instructions: limits.max_instructions.min(budget),
                ..limits
            }),
            None => builder,
        }
    }

    /// The highest draw index the cell is allowed to fork at: its
    /// injector's first possible fire, or — when no draw fires inside the
    /// scan horizon — the horizon itself. Capping at the horizon (rather
    /// than "anywhere") keeps forking sound unconditionally: only the
    /// scanned, provably fault-free region of the stream is ever skipped,
    /// even for a pathological run that dispatches past the horizon.
    fn cell_fork_bound(&self, cell: &Cell) -> u64 {
        let horizon = fork_horizon(cell.budget, &self.models[cell.model]);
        self.cell_injector(cell)
            .first_possible_fire(horizon)
            .unwrap_or(horizon)
    }

    /// Decides which families run a checkpointed baseline.
    ///
    /// A family — the cells sharing (workload, budget, model) — runs one
    /// when it contains a live fault-free cell (the baseline *is* that
    /// cell's run, so checkpoints come for free), or when some live faulty
    /// cell's first possible injection lies far enough in (≥
    /// [`MIN_WORTHWHILE_FORK_DRAWS`] draws) that skipping the prefix pays
    /// for the extra baseline run.
    fn plan_families(
        &self,
        cells: &[Cell],
        resumed: &[Option<RunRecord>],
        bounds: &[Option<u64>],
    ) -> Vec<Family> {
        let mut families: Vec<Family> = Vec::new();
        for (i, (cell, resumed)) in cells.iter().zip(resumed).enumerate() {
            if resumed.is_some() {
                continue;
            }
            let key = cell.family_key();
            let family = match families
                .iter_mut()
                .find(|f| (f.workload, f.budget_idx, f.model) == key)
            {
                Some(f) => f,
                None => {
                    families.push(Family {
                        workload: cell.workload,
                        budget_idx: cell.budget_idx,
                        model: cell.model,
                        budget: cell.budget,
                        worthwhile: false,
                        snapshot_horizon: None,
                        baseline: Mutex::new(None),
                    });
                    families.last_mut().expect("just pushed")
                }
            };
            if cell.rate_pm == 0.0 {
                family.worthwhile = true; // the baseline is this very cell
            } else {
                let bound = bounds[i].expect("live faulty cells have a bound");
                if bound >= MIN_WORTHWHILE_FORK_DRAWS {
                    family.worthwhile = true;
                }
                // Snapshots are useful up to the *largest* divergence
                // point any live faulty sibling can fork at.
                family.snapshot_horizon = Some(family.snapshot_horizon.unwrap_or(0).max(bound));
            }
        }
        families.retain(|f| f.worthwhile);
        families
    }

    /// The fault injector a cell runs under (fresh, before any draws).
    fn cell_injector(&self, cell: &Cell) -> FaultInjector {
        debug_assert!(cell.rate_pm > 0.0);
        FaultInjector::random(per_million(cell.rate_pm), cell.seed)
    }

    /// Runs one family's fault-free baseline, collecting checkpoints.
    fn run_baseline(
        &self,
        f: &Family,
        programs: &[Vec<Arc<Program>>],
    ) -> (Result<ftsim_core::SimResult, String>, Vec<Checkpoint>) {
        let builder = self.cell_builder(f.workload, f.budget_idx, f.model, f.budget, programs);
        match builder.build() {
            Ok(sim) => match f.snapshot_horizon {
                // Faulty siblings exist: collect checkpoints for them.
                Some(horizon) => {
                    let (result, checkpoints) =
                        sim.run_with_checkpoints(checkpoint_interval(f.budget), horizon);
                    (result.map_err(|e| e.to_string()), checkpoints)
                }
                // The family is only fault-free cells: snapshots would
                // serve nobody, so the baseline is a plain (free) run.
                None => (sim.run().map_err(|e| e.to_string()), Vec::new()),
            },
            Err(e) => (
                Err(ftsim_core::SimError::Invalid(e).to_string()),
                Vec::new(),
            ),
        }
    }

    /// Runs one grid cell: served from the family baseline when it is the
    /// fault-free cell, forked from the newest sound checkpoint when
    /// faulty, cold otherwise. All three paths produce byte-identical
    /// records.
    fn run_cell(
        &self,
        cell: &Cell,
        family: Option<&Family>,
        bound: Option<u64>,
        programs: &[Vec<Arc<Program>>],
    ) -> RunRecord {
        let record = self.cell_identity(cell);

        if let Some(family) = family {
            let baseline = family.baseline.lock().expect("family lock");
            let (outcome, checkpoints) = baseline.as_ref().expect("wave 1 filled every family");
            if cell.rate_pm == 0.0 {
                // The baseline is this cell's simulation.
                return match outcome {
                    Ok(result) => record.fill_outcome(result),
                    Err(e) => record.fill_error(e.clone()),
                };
            }
            // Fork: newest checkpoint at or before the first possible
            // injection (horizon-capped by `cell_fork_bound`, so every
            // candidate lies in the provably fault-free region).
            let injector = self.cell_injector(cell);
            let bound = bound.expect("live faulty cells have a bound");
            let fork_from = checkpoints
                .iter()
                .rev()
                .find(|cp| cp.draws() <= bound)
                .filter(|cp| cp.cycle() > 0)
                .cloned();
            drop(baseline); // release the family lock before simulating
            if let Some(cp) = fork_from {
                if std::env::var_os("FTSIM_FORK_DEBUG").is_some() {
                    eprintln!(
                        "fork: rate={} seed={} bound={bound} from cycle {} (draws {})",
                        cell.rate_pm,
                        cell.seed,
                        cp.cycle(),
                        cp.draws()
                    );
                }
                let builder = self
                    .cell_builder(
                        cell.workload,
                        cell.budget_idx,
                        cell.model,
                        cell.budget,
                        programs,
                    )
                    .injector(injector);
                return match builder.build() {
                    Ok(mut sim) => {
                        let draws = cp.draws();
                        let proc = sim.processor_mut();
                        proc.restore_owned(cp);
                        proc.injector_mut().fast_forward_fault_free(draws);
                        match sim.run() {
                            Ok(result) => record.fill_outcome(&result),
                            Err(e) => record.fill_error(e.to_string()),
                        }
                    }
                    Err(e) => record.fill_error(ftsim_core::SimError::Invalid(e).to_string()),
                };
            }
            // No usable checkpoint (first fire precedes the first
            // snapshot): fall through to a cold run.
        }

        let mut builder = self.cell_builder(
            cell.workload,
            cell.budget_idx,
            cell.model,
            cell.budget,
            programs,
        );
        if cell.rate_pm > 0.0 {
            builder = builder.injector(self.cell_injector(cell));
        }
        match builder.run() {
            Ok(result) => record.fill_outcome(&result),
            Err(e) => record.fill_error(e.to_string()),
        }
    }
}

/// One flattened grid cell.
struct Cell {
    workload: usize,
    budget_idx: usize,
    model: usize,
    rate_pm: f64,
    budget: u64,
    seed: u64,
}

impl Cell {
    /// The family axis: cells sharing a fault-free prefix.
    fn family_key(&self) -> (usize, usize, usize) {
        (self.workload, self.budget_idx, self.model)
    }
}

/// A (workload, budget, model) family and its shared baseline state.
struct Family {
    workload: usize,
    budget_idx: usize,
    model: usize,
    budget: u64,
    /// Whether a baseline run pays for itself (see
    /// [`Experiment::plan_families`]).
    worthwhile: bool,
    /// Largest draw index any live faulty sibling can fork at (`None`
    /// when the family has no live faulty cells at all — no snapshots
    /// are taken then).
    snapshot_horizon: Option<u64>,
    /// Filled by wave 1: the baseline outcome (serving fault-free cells)
    /// and its periodic checkpoints (serving forks).
    #[allow(clippy::type_complexity)]
    baseline: Mutex<Option<(Result<ftsim_core::SimResult, String>, Vec<Checkpoint>)>>,
}

/// How far ahead to scan an injector's stream for its first possible
/// fire: generously past the draws a cell can make (`R` per instruction,
/// re-dispatches included), so "no fire within the horizon" really means
/// the whole run is fault-free.
fn fork_horizon(budget: u64, model: &MachineConfig) -> u64 {
    budget
        .saturating_mul(u64::from(model.redundancy.r))
        .saturating_mul(4)
        .saturating_add(100_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::asm;
    use ftsim_workloads::{profile, spec_profiles};

    #[test]
    fn empty_axes_are_rejected() {
        assert_eq!(
            Experiment::grid().run().unwrap_err(),
            ExperimentError::NoWorkloads
        );
        assert_eq!(
            Experiment::grid()
                .workloads([profile("gcc").unwrap()])
                .run()
                .unwrap_err(),
            ExperimentError::NoModels
        );
        let base = || {
            Experiment::grid()
                .workloads([profile("gcc").unwrap()])
                .models([MachineConfig::ss1()])
        };
        assert_eq!(
            base().budgets([]).run().unwrap_err(),
            ExperimentError::EmptyAxis { axis: "budgets" }
        );
        assert_eq!(
            base().seeds([]).run().unwrap_err(),
            ExperimentError::EmptyAxis { axis: "seeds" }
        );
        assert_eq!(
            base().fault_rates([]).run().unwrap_err(),
            ExperimentError::EmptyAxis {
                axis: "fault_rates"
            }
        );
    }

    #[test]
    fn invalid_models_and_rates_are_rejected() {
        let mut bad = MachineConfig::ss2().named("bad");
        bad.commit_width = 1;
        let err = Experiment::grid()
            .workloads([profile("gcc").unwrap()])
            .models([bad])
            .run()
            .unwrap_err();
        assert!(
            matches!(err, ExperimentError::InvalidModel { ref model, .. } if model == "bad"),
            "{err}"
        );

        let err = Experiment::grid()
            .workloads([profile("gcc").unwrap()])
            .models([MachineConfig::ss1()])
            .fault_rates([-1.0])
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::InvalidFaultRate(-1.0));

        let err = Experiment::grid()
            .workloads([profile("gcc").unwrap()])
            .models([MachineConfig::ss1()])
            .budget(0)
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::ZeroBudget);
    }

    #[test]
    fn grid_order_is_workload_major() {
        let records = Experiment::grid()
            .workloads([profile("gcc").unwrap(), profile("go").unwrap()])
            .models([MachineConfig::ss1(), MachineConfig::ss2()])
            .budget(1_500)
            .run()
            .unwrap();
        let keys: Vec<(&str, &str)> = records
            .iter()
            .map(|r| (r.workload.as_str(), r.model.as_str()))
            .collect();
        assert_eq!(
            keys,
            [
                ("gcc", "SS-1"),
                ("gcc", "SS-2"),
                ("go", "SS-1"),
                ("go", "SS-2"),
            ]
        );
    }

    #[test]
    fn cells_counts_the_product() {
        let e = Experiment::grid()
            .workloads(spec_profiles())
            .models([MachineConfig::ss1(), MachineConfig::ss2()])
            .fault_rates([0.0, 100.0, 1_000.0])
            .budgets([1_000, 2_000])
            .seeds([1, 2, 3]);
        assert_eq!(e.cells(), 11 * 2 * 3 * 2 * 3);
    }

    #[test]
    fn ad_hoc_programs_run_as_workloads() {
        let p = asm::assemble("addi r1, r0, 7\nmul r2, r1, r1\nhalt\n").unwrap();
        let records = Experiment::grid()
            .workloads([("tiny", p)])
            .models([MachineConfig::ss2()])
            .oracle(OracleMode::Final)
            .run()
            .unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].ok(), "{}", records[0].error);
        assert_eq!(records[0].workload, "tiny");
        assert_eq!(records[0].suite, "");
        assert!(records[0].halted);
        assert_eq!(records[0].retired_instructions, 3);
    }

    #[test]
    fn limits_override_keeps_the_budget_axis_meaningful() {
        // A blanket limits() override must not repeal per-cell budgets:
        // the cell still stops near its budget, as its record claims. The
        // program runs ~9000 instructions to halt, far past the budget.
        let long_loop = asm::assemble(
            "addi r1, r0, 3000\nloop:\naddi r2, r2, 1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n",
        )
        .unwrap();
        let records = Experiment::grid()
            .workloads([("long_loop", long_loop)])
            .models([MachineConfig::ss1()])
            .budget(1_000)
            .limits(RunLimits::default())
            .run()
            .unwrap();
        let r = &records[0];
        assert!(r.ok(), "{}", r.error);
        assert_eq!(r.budget, 1_000);
        assert!(!r.halted, "budget should stop the run before halt");
        assert!(
            r.retired_instructions >= 1_000 && r.retired_instructions < 2_000,
            "budget ignored: retired {}",
            r.retired_instructions
        );
    }

    #[test]
    fn checkpoint_forking_is_byte_identical_to_cold_runs() {
        // The whole point of prefix sharing: forked grids must not change
        // a single byte of any record — across fault-free cells (served by
        // the family baseline), forked faulty cells, and cold-fallback
        // cells whose first fault lands before the first checkpoint.
        let build = || {
            Experiment::grid()
                .workloads([profile("fpppp").unwrap(), profile("gcc").unwrap()])
                .models([MachineConfig::ss2(), MachineConfig::ss3_majority()])
                .fault_rates([0.0, 200.0, 5_000.0, 50_000.0])
                .budget(4_000)
                .seeds([3])
                .oracle(OracleMode::Final)
        };
        let cold = build().checkpointing(false).run().unwrap();
        let forked = build().checkpointing(true).run().unwrap();
        assert_eq!(
            crate::harness::to_csv(&cold),
            crate::harness::to_csv(&forked)
        );
        // The corpus must actually exercise fault handling, or the
        // equality proves nothing.
        assert!(cold.iter().any(|r| r.faults_injected > 0));
        assert!(cold.iter().any(|r| r.fault_rewinds > 0));
    }

    #[test]
    fn resume_skips_matching_cells_and_reruns_failures() {
        let build = || {
            Experiment::grid()
                .workloads([profile("bzip").unwrap()])
                .models([MachineConfig::ss1(), MachineConfig::ss2()])
                .budget(1_500)
        };
        let first = build().run().unwrap();
        assert!(first.iter().all(|r| r.ok()));

        // Poison one prior record's outcome but keep it ok(): if the cell
        // is skipped, the poisoned value must come back verbatim — proof
        // the simulation did not re-run.
        let mut prior = first.clone();
        prior[0].cycles = 123_456_789;
        // A *failed* prior record must be re-simulated.
        prior[1].error = "wedged last time".to_string();

        let resumed = build().resume_from(prior.clone()).run().unwrap();
        assert_eq!(resumed[0].cycles, 123_456_789, "cell 0 must be reused");
        assert!(resumed[1].ok(), "failed prior record must re-run");
        assert_eq!(resumed[1], first[1]);

        // A grid with a different budget matches nothing: everything
        // re-runs and the poisoned value does not leak.
        let fresh = build().budget(2_000).resume_from(prior).run().unwrap();
        assert!(fresh.iter().all(|r| r.cycles != 123_456_789));
    }

    #[test]
    fn fault_cells_record_fates() {
        let records = Experiment::grid()
            .workloads([profile("equake").unwrap()])
            .models([MachineConfig::ss2()])
            .fault_rates([5_000.0])
            .budget(2_000)
            .seeds([7])
            .oracle(OracleMode::Final)
            .run()
            .unwrap();
        let r = &records[0];
        assert!(r.ok(), "{}", r.error);
        assert!(r.faults_injected > 0);
        assert_eq!(r.faults_escaped, 0);
        assert_eq!(r.fault_rate_pm, 5_000.0);
        assert_eq!(r.seed, 7);
    }
}
