//! Declarative sweep grids and the parallel cell runner.

use crate::harness::plan::SweepPlan;
use crate::harness::record::RunRecord;
use ftsim_core::{ConfigError, MachineConfig, OracleMode, RunLimits};
use ftsim_faults::SiteMix;
use ftsim_isa::Program;
use ftsim_workloads::WorkloadProfile;
use std::fmt;

/// Default committed-instruction budget per cell (the experiments'
/// standard sample size; the paper simulates 1 B instructions, whose
/// steady-state shape is stable well below that).
pub const DEFAULT_BUDGET: u64 = 60_000;

/// One workload axis entry: a calibrated benchmark profile or an ad-hoc
/// named program.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A Table 2-calibrated synthetic benchmark.
    Profile(WorkloadProfile),
    /// A fixed program under a display name (budget still limits the run,
    /// but the program is used as-is).
    Program {
        /// Display name for records.
        name: String,
        /// The program to run.
        program: Program,
    },
}

impl Workload {
    /// Display name for records.
    pub fn name(&self) -> &str {
        match self {
            Workload::Profile(p) => p.name,
            Workload::Program { name, .. } => name,
        }
    }

    /// Suite label for records (empty for ad-hoc programs).
    pub fn suite(&self) -> &str {
        match self {
            Workload::Profile(p) => p.suite,
            Workload::Program { .. } => "",
        }
    }

    /// The program to simulate for a given instruction budget.
    pub(crate) fn program_for(&self, budget: u64) -> Program {
        match self {
            Workload::Profile(p) => p.program_for_instructions(budget),
            Workload::Program { program, .. } => program.clone(),
        }
    }
}

impl From<WorkloadProfile> for Workload {
    fn from(p: WorkloadProfile) -> Self {
        Workload::Profile(p)
    }
}

impl From<(&str, Program)> for Workload {
    fn from((name, program): (&str, Program)) -> Self {
        Workload::Program {
            name: name.to_string(),
            program,
        }
    }
}

/// Grid misconfiguration, reported by [`Experiment::run`] before any cell
/// simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The workload axis is empty.
    NoWorkloads,
    /// The model axis is empty.
    NoModels,
    /// An axis that must be non-empty was set to nothing.
    EmptyAxis {
        /// Which axis (`"budgets"`, `"seeds"`, `"fault_rates"`).
        axis: &'static str,
    },
    /// A machine model fails validation.
    InvalidModel {
        /// The model's display name.
        model: String,
        /// The violated invariant.
        source: ConfigError,
    },
    /// A fault rate outside `[0, 1e6]` faults per million instructions.
    InvalidFaultRate(f64),
    /// A zero instruction budget.
    ZeroBudget,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::NoWorkloads => write!(f, "experiment has no workloads"),
            ExperimentError::NoModels => write!(f, "experiment has no machine models"),
            ExperimentError::EmptyAxis { axis } => {
                write!(f, "experiment axis `{axis}` was set to an empty list")
            }
            ExperimentError::InvalidModel { model, source } => {
                write!(f, "invalid machine model `{model}`: {source}")
            }
            ExperimentError::InvalidFaultRate(rate) => write!(
                f,
                "fault rate {rate} per million instructions is not in [0, 1e6]"
            ),
            ExperimentError::ZeroBudget => write!(f, "instruction budget must be nonzero"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::InvalidModel { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A declarative experiment grid: workloads × models × fault rates ×
/// site mixes × budgets × seeds, executed cell-by-cell on a thread pool.
///
/// Cells are enumerated with the workload as the outermost axis and the
/// seed as the innermost, and the result vector always comes back in that
/// order regardless of how many worker threads ran it — the records of a
/// parallel run are byte-identical to a sequential one.
///
/// # Examples
///
/// A miniature of the paper's Figure 5 sweep (three machine models over
/// benchmarks, fault-free):
///
/// ```
/// use ftsim::harness::Experiment;
/// use ftsim_core::MachineConfig;
/// use ftsim_workloads::profile;
///
/// let records = Experiment::grid()
///     .workloads([profile("go").unwrap()])
///     .models([MachineConfig::ss1(), MachineConfig::static2(), MachineConfig::ss2()])
///     .budget(2_000)
///     .run()
///     .unwrap();
/// let names: Vec<&str> = records.iter().map(|r| r.model.as_str()).collect();
/// assert_eq!(names, ["SS-1", "Static-2", "SS-2"]);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    pub(crate) workloads: Vec<Workload>,
    pub(crate) models: Vec<MachineConfig>,
    pub(crate) fault_rates_pm: Vec<f64>,
    pub(crate) site_mixes: Vec<SiteMix>,
    pub(crate) budgets: Vec<u64>,
    pub(crate) seeds: Vec<u64>,
    pub(crate) oracle: OracleMode,
    pub(crate) threads: usize,
    pub(crate) limits: Option<RunLimits>,
    pub(crate) checkpointing: bool,
    pub(crate) prior: Vec<RunRecord>,
}

impl Experiment {
    /// Starts an empty grid: no workloads or models yet, fault-free,
    /// [`DEFAULT_BUDGET`], seed 0, oracle off, one worker per core.
    /// Checkpoint-forking (see [`Experiment::checkpointing`]) defaults to
    /// off unless the `FTSIM_CHECKPOINT_FORK` environment variable is set.
    pub fn grid() -> Self {
        Self {
            workloads: Vec::new(),
            models: Vec::new(),
            fault_rates_pm: vec![0.0],
            site_mixes: vec![SiteMix::uniform()],
            budgets: vec![DEFAULT_BUDGET],
            seeds: vec![0],
            oracle: OracleMode::Off,
            threads: 0,
            limits: None,
            checkpointing: std::env::var_os("FTSIM_CHECKPOINT_FORK").is_some(),
            prior: Vec::new(),
        }
    }

    /// Sets the workload axis (benchmark profiles and/or named programs).
    #[must_use]
    pub fn workloads<I, W>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = W>,
        W: Into<Workload>,
    {
        self.workloads = workloads.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the machine-model axis.
    #[must_use]
    pub fn models<I: IntoIterator<Item = MachineConfig>>(mut self, models: I) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Sets the fault-frequency axis, in faults per million instructions
    /// (Figure 6's x-axis unit). Default: fault-free.
    #[must_use]
    pub fn fault_rates<I: IntoIterator<Item = f64>>(mut self, rates_pm: I) -> Self {
        self.fault_rates_pm = rates_pm.into_iter().collect();
        self
    }

    /// Sets the fault-site-mix axis: each cell's injector weights its
    /// choice of injection site by one [`SiteMix`] (named presets such as
    /// `uniform`, `addr-heavy`, `control-only`). Default: uniform only.
    ///
    /// Cells differing only in site mix belong to the same
    /// checkpoint-fork *family* — the fault-free prefix is
    /// mix-independent because a non-firing injector draw consumes
    /// exactly one random sample under any mix.
    #[must_use]
    pub fn site_mixes<I: IntoIterator<Item = SiteMix>>(mut self, mixes: I) -> Self {
        self.site_mixes = mixes.into_iter().collect();
        self
    }

    /// Sets the committed-instruction budget axis. Default:
    /// [`DEFAULT_BUDGET`].
    #[must_use]
    pub fn budgets<I: IntoIterator<Item = u64>>(mut self, budgets: I) -> Self {
        self.budgets = budgets.into_iter().collect();
        self
    }

    /// Convenience: a single-budget axis.
    #[must_use]
    pub fn budget(self, budget: u64) -> Self {
        self.budgets(Some(budget))
    }

    /// Sets the fault-injector seed axis (one cell per seed — used to
    /// retry stochastic sweeps with fresh seeds). Default: `[0]`.
    #[must_use]
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the oracle mode for every cell. Default: [`OracleMode::Off`]
    /// (performance sweeps).
    #[must_use]
    pub fn oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        self
    }

    /// Caps the worker-thread count; `0` (default) uses one worker per
    /// available core.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-cell cycle/watchdog limits (default: derived
    /// from each cell's budget, with a proportionate cycle ceiling).
    /// The instruction limit is still capped at each cell's budget, so
    /// the budgets axis keeps meaning what the records say.
    #[must_use]
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Enables or disables checkpoint-forking (prefix sharing).
    ///
    /// When enabled, each grid *family* — the cells sharing a (workload,
    /// model, budget) and differing only in fault rate, site mix and
    /// seed — runs one
    /// fault-free baseline that drops periodic machine checkpoints
    /// ([`ftsim_core::Simulator::run_with_checkpoints`]). The baseline's result serves
    /// every fault-free cell directly, and each faulty cell *forks*: it
    /// restores the newest checkpoint taken at or before its injector's
    /// first possible fault
    /// ([`ftsim_faults::FaultInjector::first_possible_fire`]) and simulates only the
    /// post-divergence suffix. Records are byte-identical to cold-start
    /// runs — forking changes wall-clock cost, never results.
    ///
    /// Default: the `FTSIM_CHECKPOINT_FORK` environment variable.
    #[must_use]
    pub fn checkpointing(mut self, enabled: bool) -> Self {
        self.checkpointing = enabled;
        self
    }

    /// Provides records from a previous run (e.g. parsed from an exported
    /// CSV with [`crate::harness::from_csv`]); cells whose identity —
    /// workload, model, redundancy, fault rate, seed, budget, oracle
    /// mode — matches a *successful* prior record are not re-simulated,
    /// and the prior record is returned in the cell's grid slot instead.
    /// Failed prior records are re-run.
    ///
    /// The oracle mode is part of the identity, so feeding records from
    /// an [`OracleMode::Off`] sweep into an [`OracleMode::Final`] grid
    /// (or vice versa) never reuses them — the mismatched cells are
    /// simply re-simulated under this grid's verification level.
    ///
    /// Caveat: records still do not carry [`Experiment::limits`]
    /// overrides; resumption assumes the prior run used the same run
    /// limits as this grid.
    #[must_use]
    pub fn resume_from<I: IntoIterator<Item = RunRecord>>(mut self, prior: I) -> Self {
        self.prior.extend(prior);
        self
    }

    /// Number of grid cells this experiment will run.
    pub fn cells(&self) -> usize {
        self.workloads.len()
            * self.models.len()
            * self.fault_rates_pm.len()
            * self.site_mixes.len()
            * self.budgets.len()
            * self.seeds.len()
    }

    pub(crate) fn validate(&self) -> Result<(), ExperimentError> {
        if self.workloads.is_empty() {
            return Err(ExperimentError::NoWorkloads);
        }
        if self.models.is_empty() {
            return Err(ExperimentError::NoModels);
        }
        for (axis, empty) in [
            ("fault_rates", self.fault_rates_pm.is_empty()),
            ("site_mixes", self.site_mixes.is_empty()),
            ("budgets", self.budgets.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            if empty {
                return Err(ExperimentError::EmptyAxis { axis });
            }
        }
        for model in &self.models {
            model
                .validate()
                .map_err(|source| ExperimentError::InvalidModel {
                    model: model.name.clone(),
                    source,
                })?;
        }
        for &rate in &self.fault_rates_pm {
            if !(0.0..=1e6).contains(&rate) || rate.is_nan() {
                return Err(ExperimentError::InvalidFaultRate(rate));
            }
        }
        if self.budgets.contains(&0) {
            return Err(ExperimentError::ZeroBudget);
        }
        Ok(())
    }

    /// Validates the grid and runs every cell, fanning out across worker
    /// threads; records come back in grid order (workload-major,
    /// seed-minor), identical for any worker count.
    ///
    /// With [`Experiment::checkpointing`] enabled the runner shares each
    /// family's fault-free prefix (see that method's docs); with
    /// [`Experiment::resume_from`] records, already-simulated cells are
    /// returned as-is. Neither changes a single byte of any record — only
    /// how much work producing them costs.
    ///
    /// A cell whose *simulation* fails (wedged machine, cycle-budget
    /// overrun — possible at extreme fault rates) produces a record with
    /// [`RunRecord::ok`]` == false` rather than aborting the sweep.
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] when the grid itself is misconfigured.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a simulator bug, not an
    /// experiment failure).
    pub fn run(self) -> Result<Vec<RunRecord>, ExperimentError> {
        Ok(self.plan()?.run_all())
    }

    /// Validates the grid and materializes it into a [`SweepPlan`] —
    /// cells flattened in grid order, prior records matched, fork bounds
    /// computed and families grouped — without running anything.
    ///
    /// [`Experiment::run`] is `plan()` followed by executing every cell
    /// across a worker pool; callers that need finer control (the
    /// `ftsimd` daemon streams each cell's record to disk as it
    /// completes, sharding cells by family across its own workers)
    /// execute the plan cell-by-cell instead.
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] when the grid is misconfigured.
    pub fn plan(self) -> Result<SweepPlan, ExperimentError> {
        SweepPlan::new(self)
    }

    /// Validates the grid and enumerates the identity half of every
    /// cell's record, in grid order, without computing fork bounds or
    /// running anything — the cheap way to answer "which cells does this
    /// grid contain, and in what order?" (used by the daemon to merge
    /// streamed results back into grid order).
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] when the grid is misconfigured.
    pub fn identities(&self) -> Result<Vec<RunRecord>, ExperimentError> {
        self.validate()?;
        // Grid order has exactly one definition: the planner's cell
        // enumeration.
        Ok(crate::harness::plan::enumerate_cells(self)
            .iter()
            .map(|cell| crate::harness::plan::cell_identity(self, cell))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_isa::asm;
    use ftsim_workloads::{profile, spec_profiles};

    #[test]
    fn empty_axes_are_rejected() {
        assert_eq!(
            Experiment::grid().run().unwrap_err(),
            ExperimentError::NoWorkloads
        );
        assert_eq!(
            Experiment::grid()
                .workloads([profile("gcc").unwrap()])
                .run()
                .unwrap_err(),
            ExperimentError::NoModels
        );
        let base = || {
            Experiment::grid()
                .workloads([profile("gcc").unwrap()])
                .models([MachineConfig::ss1()])
        };
        assert_eq!(
            base().budgets([]).run().unwrap_err(),
            ExperimentError::EmptyAxis { axis: "budgets" }
        );
        assert_eq!(
            base().seeds([]).run().unwrap_err(),
            ExperimentError::EmptyAxis { axis: "seeds" }
        );
        assert_eq!(
            base().fault_rates([]).run().unwrap_err(),
            ExperimentError::EmptyAxis {
                axis: "fault_rates"
            }
        );
    }

    #[test]
    fn invalid_models_and_rates_are_rejected() {
        let mut bad = MachineConfig::ss2().named("bad");
        bad.commit_width = 1;
        let err = Experiment::grid()
            .workloads([profile("gcc").unwrap()])
            .models([bad])
            .run()
            .unwrap_err();
        assert!(
            matches!(err, ExperimentError::InvalidModel { ref model, .. } if model == "bad"),
            "{err}"
        );

        let err = Experiment::grid()
            .workloads([profile("gcc").unwrap()])
            .models([MachineConfig::ss1()])
            .fault_rates([-1.0])
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::InvalidFaultRate(-1.0));

        let err = Experiment::grid()
            .workloads([profile("gcc").unwrap()])
            .models([MachineConfig::ss1()])
            .budget(0)
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::ZeroBudget);
    }

    #[test]
    fn grid_order_is_workload_major() {
        let records = Experiment::grid()
            .workloads([profile("gcc").unwrap(), profile("go").unwrap()])
            .models([MachineConfig::ss1(), MachineConfig::ss2()])
            .budget(1_500)
            .run()
            .unwrap();
        let keys: Vec<(&str, &str)> = records
            .iter()
            .map(|r| (r.workload.as_str(), r.model.as_str()))
            .collect();
        assert_eq!(
            keys,
            [
                ("gcc", "SS-1"),
                ("gcc", "SS-2"),
                ("go", "SS-1"),
                ("go", "SS-2"),
            ]
        );
    }

    #[test]
    fn identities_enumerate_in_run_order() {
        // identities() and run() must agree on grid order cell-for-cell
        // (the daemon merges streamed records back with identities()).
        let e = Experiment::grid()
            .workloads([profile("gcc").unwrap(), profile("go").unwrap()])
            .models([MachineConfig::ss1(), MachineConfig::ss2()])
            .fault_rates([0.0, 100.0])
            .budget(1_000)
            .seeds([1, 2]);
        let ids = e.identities().unwrap();
        let records = e.clone().run().unwrap();
        assert_eq!(ids.len(), e.cells());
        assert_eq!(ids.len(), records.len());
        assert!(ids
            .iter()
            .zip(&records)
            .all(|(id, record)| record.same_identity(id)));
    }

    #[test]
    fn cells_counts_the_product() {
        let e = Experiment::grid()
            .workloads(spec_profiles())
            .models([MachineConfig::ss1(), MachineConfig::ss2()])
            .fault_rates([0.0, 100.0, 1_000.0])
            .budgets([1_000, 2_000])
            .seeds([1, 2, 3]);
        assert_eq!(e.cells(), 11 * 2 * 3 * 2 * 3);
    }

    #[test]
    fn ad_hoc_programs_run_as_workloads() {
        let p = asm::assemble("addi r1, r0, 7\nmul r2, r1, r1\nhalt\n").unwrap();
        let records = Experiment::grid()
            .workloads([("tiny", p)])
            .models([MachineConfig::ss2()])
            .oracle(OracleMode::Final)
            .run()
            .unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].ok(), "{}", records[0].error);
        assert_eq!(records[0].workload, "tiny");
        assert_eq!(records[0].suite, "");
        assert!(records[0].halted);
        assert_eq!(records[0].retired_instructions, 3);
    }

    #[test]
    fn limits_override_keeps_the_budget_axis_meaningful() {
        // A blanket limits() override must not repeal per-cell budgets:
        // the cell still stops near its budget, as its record claims. The
        // program runs ~9000 instructions to halt, far past the budget.
        let long_loop = asm::assemble(
            "addi r1, r0, 3000\nloop:\naddi r2, r2, 1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n",
        )
        .unwrap();
        let records = Experiment::grid()
            .workloads([("long_loop", long_loop)])
            .models([MachineConfig::ss1()])
            .budget(1_000)
            .limits(RunLimits::default())
            .run()
            .unwrap();
        let r = &records[0];
        assert!(r.ok(), "{}", r.error);
        assert_eq!(r.budget, 1_000);
        assert!(!r.halted, "budget should stop the run before halt");
        assert!(
            r.retired_instructions >= 1_000 && r.retired_instructions < 2_000,
            "budget ignored: retired {}",
            r.retired_instructions
        );
    }

    #[test]
    fn checkpoint_forking_is_byte_identical_to_cold_runs() {
        // The whole point of prefix sharing: forked grids must not change
        // a single byte of any record — across fault-free cells (served by
        // the family baseline), forked faulty cells, and cold-fallback
        // cells whose first fault lands before the first checkpoint.
        let build = || {
            Experiment::grid()
                .workloads([profile("fpppp").unwrap(), profile("gcc").unwrap()])
                .models([MachineConfig::ss2(), MachineConfig::ss3_majority()])
                .fault_rates([0.0, 200.0, 5_000.0, 50_000.0])
                .budget(4_000)
                .seeds([3])
                .oracle(OracleMode::Final)
        };
        let cold = build().checkpointing(false).run().unwrap();
        let forked = build().checkpointing(true).run().unwrap();
        assert_eq!(
            crate::harness::to_csv(&cold),
            crate::harness::to_csv(&forked)
        );
        // The corpus must actually exercise fault handling, or the
        // equality proves nothing.
        assert!(cold.iter().any(|r| r.faults_injected > 0));
        assert!(cold.iter().any(|r| r.fault_rewinds > 0));
    }

    #[test]
    fn resume_skips_matching_cells_and_reruns_failures() {
        let build = || {
            Experiment::grid()
                .workloads([profile("bzip").unwrap()])
                .models([MachineConfig::ss1(), MachineConfig::ss2()])
                .budget(1_500)
        };
        let first = build().run().unwrap();
        assert!(first.iter().all(|r| r.ok()));

        // Poison one prior record's outcome but keep it ok(): if the cell
        // is skipped, the poisoned value must come back verbatim — proof
        // the simulation did not re-run.
        let mut prior = first.clone();
        prior[0].cycles = 123_456_789;
        // A *failed* prior record must be re-simulated.
        prior[1].error = "wedged last time".to_string();

        let resumed = build().resume_from(prior.clone()).run().unwrap();
        assert_eq!(resumed[0].cycles, 123_456_789, "cell 0 must be reused");
        assert!(resumed[1].ok(), "failed prior record must re-run");
        assert_eq!(resumed[1], first[1]);

        // A grid with a different budget matches nothing: everything
        // re-runs and the poisoned value does not leak.
        let fresh = build().budget(2_000).resume_from(prior).run().unwrap();
        assert!(fresh.iter().all(|r| r.cycles != 123_456_789));
    }

    #[test]
    fn resume_never_reuses_records_from_a_different_oracle_mode() {
        // Regression: before the oracle mode joined the record identity,
        // resuming an OracleMode::Final grid from an OracleMode::Off
        // sweep silently reused unverified cells.
        let build = |oracle| {
            Experiment::grid()
                .workloads([profile("bzip").unwrap()])
                .models([MachineConfig::ss1()])
                .budget(1_500)
                .oracle(oracle)
        };
        let off = build(OracleMode::Off).run().unwrap();
        assert!(off.iter().all(|r| r.ok()));
        assert_eq!(off[0].oracle, "off");

        // Poison the Off-mode record's outcome; a Final grid must not
        // echo it back.
        let mut prior = off.clone();
        prior[0].cycles = 123_456_789;
        let resumed = build(OracleMode::Final).resume_from(prior).run().unwrap();
        assert_ne!(
            resumed[0].cycles, 123_456_789,
            "unverified Off-mode record leaked into a Final grid"
        );
        assert_eq!(resumed[0].oracle, "final");

        // Same oracle mode still resumes as before.
        let mut prior = off.clone();
        prior[0].cycles = 123_456_789;
        let reused = build(OracleMode::Off).resume_from(prior).run().unwrap();
        assert_eq!(reused[0].cycles, 123_456_789, "matching mode must reuse");
    }

    #[test]
    fn fault_cells_record_fates() {
        let records = Experiment::grid()
            .workloads([profile("equake").unwrap()])
            .models([MachineConfig::ss2()])
            .fault_rates([5_000.0])
            .budget(2_000)
            .seeds([7])
            .oracle(OracleMode::Final)
            .run()
            .unwrap();
        let r = &records[0];
        assert!(r.ok(), "{}", r.error);
        assert!(r.faults_injected > 0);
        assert_eq!(r.faults_escaped, 0);
        assert_eq!(r.fault_rate_pm, 5_000.0);
        assert_eq!(r.seed, 7);
    }
}
