//! The experiment harness: declarative sweep grids, a parallel runner,
//! and flat, serializable run records.
//!
//! The paper's evaluation is a cross-product — 11 workloads × machine
//! models × redundancy degree × fault frequency — and before this layer
//! existed every experiment hand-rolled that product as nested loops.
//! [`Experiment::grid`] expresses it declaratively:
//!
//! ```
//! use ftsim::harness::Experiment;
//! use ftsim_core::MachineConfig;
//! use ftsim_workloads::profile;
//!
//! let records = Experiment::grid()
//!     .workloads([profile("gcc").unwrap(), profile("fpppp").unwrap()])
//!     .models([MachineConfig::ss1(), MachineConfig::ss2()])
//!     .budget(3_000)
//!     .run()
//!     .unwrap();
//! assert_eq!(records.len(), 4); // 2 workloads x 2 models
//! assert!(records.iter().all(|r| r.ok() && r.ipc > 0.0));
//! ```
//!
//! Each cell of the grid is one independent, deterministic simulation, so
//! the runner fans cells out across `std::thread` workers (one per
//! available core by default) and reassembles results in grid order —
//! a parallel run yields **byte-identical** records to a sequential one.
//!
//! Results come back as [`RunRecord`]s: flat, self-describing rows
//! (model, workload, `R`, fault rate, site mix, seed, IPC, cycles, fault
//! fates, per-site fate tables, detection latencies, the final-state
//! digest, per-stage statistics) that serialize to CSV ([`to_csv`]) and
//! JSON ([`to_json`]) and parse back ([`from_csv`], [`from_json`])
//! without any external dependency.

mod experiment;
mod plan;
mod record;

pub use experiment::{Experiment, ExperimentError, Workload, DEFAULT_BUDGET};
pub use plan::{group_families, CellPath, FamilyId, SweepPlan};
pub use record::{
    expect_record, from_csv, from_csv_tolerant, from_csv_tolerant_prefix, from_json,
    load_resume_csv, record_for, save_csv, to_csv, to_json, RecordError, RunRecord,
};
