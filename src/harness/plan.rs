//! The sweep planner: cell enumeration, family grouping and the
//! checkpoint/fork baseline machinery behind [`Experiment::run`].
//!
//! A [`SweepPlan`] is a *materialized* grid: every cell flattened in grid
//! order, prior (resumed) records matched to their slots, fork bounds
//! computed for live faulty cells, and cells grouped into **families** —
//! the sets sharing a (workload, budget, model) coordinate and therefore a
//! fault-free prefix. One-shot grids ([`Experiment::run`]) and the
//! long-running `ftsimd` daemon both execute through this type, so the
//! scheduling rules — which families run a checkpointed baseline, when a
//! faulty cell may fork, why records stay byte-identical — live in exactly
//! one place.
//!
//! Execution is pull-based and thread-safe: [`SweepPlan::run_cell`] can be
//! called for any cell index from any thread, in any order. A family's
//! baseline is computed lazily, at most once, the first time one of its
//! cells needs it; callers that want baseline-level parallelism (the
//! one-shot runner) can warm them explicitly via
//! [`SweepPlan::prepare_family`]. Callers that want to *stream* results as
//! cells complete (the daemon) iterate [`SweepPlan::shards`] — runnable
//! cells grouped by family — so each worker reuses its family's
//! checkpoints without cross-thread coordination beyond the per-family
//! baseline lock.

use crate::harness::experiment::{Experiment, ExperimentError};
use crate::harness::record::RunRecord;
use ftsim_core::profile::{self, StageProfile};
use ftsim_core::{Checkpoint, MachineConfig, RunLimits, SimBuilder, SimResult, Simulator};
use ftsim_faults::{per_million, FaultInjector};
use ftsim_isa::Program;
use ftsim_obs::metrics;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Smallest first-possible-injection draw index for which running a
/// *dedicated* family baseline (one that serves no fault-free cell of its
/// own) pays for itself. Families containing a fault-free cell always run
/// the baseline — it *is* that cell's simulation.
const MIN_WORTHWHILE_FORK_DRAWS: u64 = 4_096;

/// Checkpoint spacing for a family baseline, in cycles: fine enough that
/// the skipped prefix tracks each cell's divergence point closely, coarse
/// enough that snapshot cost stays a small fraction of the run.
fn checkpoint_interval(budget: u64) -> u64 {
    (budget / 32).clamp(256, 8_192)
}

/// How far ahead to scan an injector's stream for its first possible
/// fire: generously past the draws a cell can make (`R` per instruction,
/// re-dispatches included), so "no fire within the horizon" really means
/// the whole run is fault-free.
fn fork_horizon(budget: u64, model: &MachineConfig) -> u64 {
    budget
        .saturating_mul(u64::from(model.redundancy.r))
        .saturating_mul(4)
        .saturating_add(100_000)
}

/// Which of [`SweepPlan::run_cell`]'s four execution paths produced a
/// record. All four yield byte-identical records; the path is pure
/// observability (cost attribution, trace events, metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellPath {
    /// Served verbatim from a prior record (resume).
    Resumed,
    /// Served by the family baseline's own fault-free run.
    Baseline,
    /// Forked from a family checkpoint past the fault-free prefix.
    Forked,
    /// Simulated from cycle zero.
    Cold,
}

impl CellPath {
    /// Stable lowercase name, used as a metric label and trace kind.
    pub fn name(self) -> &'static str {
        match self {
            CellPath::Resumed => "resumed",
            CellPath::Baseline => "baseline",
            CellPath::Forked => "forked",
            CellPath::Cold => "cold",
        }
    }
}

/// Metric handles the sweep hot path resolves once per process. The
/// cycle/instruction counters account **work actually simulated by this
/// process** — a forked cell adds only its post-checkpoint suffix, a
/// baseline-served cell adds nothing (the baseline run itself already
/// counted) — so `ftsim_sim_cycles_total` divided by wall time is an
/// honest per-worker throughput, not an as-if-cold figure.
struct ObsHandles {
    cells: [metrics::Counter; 4],
    sim_cycles: metrics::Counter,
    sim_instructions: metrics::Counter,
    checkpoints_taken: metrics::Counter,
    checkpoint_bytes: metrics::Counter,
}

fn obs() -> &'static ObsHandles {
    static HANDLES: OnceLock<ObsHandles> = OnceLock::new();
    HANDLES.get_or_init(|| ObsHandles {
        cells: [
            CellPath::Resumed,
            CellPath::Baseline,
            CellPath::Forked,
            CellPath::Cold,
        ]
        .map(|p| metrics::counter("ftsim_cells_total", &[("path", p.name())])),
        sim_cycles: metrics::counter("ftsim_sim_cycles_total", &[]),
        sim_instructions: metrics::counter("ftsim_sim_instructions_total", &[]),
        checkpoints_taken: metrics::counter("ftsim_checkpoints_taken_total", &[]),
        checkpoint_bytes: metrics::counter("ftsim_checkpoint_bytes_total", &[]),
    })
}

/// One flattened grid cell.
pub(crate) struct Cell {
    pub(crate) workload: usize,
    pub(crate) budget_idx: usize,
    pub(crate) model: usize,
    pub(crate) rate_pm: f64,
    /// Index into the experiment's site-mix axis.
    pub(crate) mix: usize,
    pub(crate) budget: u64,
    pub(crate) seed: u64,
}

impl Cell {
    /// The family axis: cells sharing a fault-free prefix.
    fn family_key(&self) -> (usize, usize, usize) {
        (self.workload, self.budget_idx, self.model)
    }
}

/// A family baseline's outcome: the fault-free result (serving the
/// family's rate-0 cells) and the periodic checkpoints (serving forks).
type Baseline = (Result<SimResult, String>, Vec<Checkpoint>);

/// A (workload, budget, model) family and its shared baseline state.
struct Family {
    workload: usize,
    budget_idx: usize,
    model: usize,
    budget: u64,
    /// Whether a baseline run pays for itself (see `plan_families`).
    worthwhile: bool,
    /// Largest draw index any live faulty sibling can fork at (`None`
    /// when the family has no live faulty cells at all — no snapshots
    /// are taken then).
    snapshot_horizon: Option<u64>,
    /// Computed lazily, at most once, under this lock.
    baseline: Mutex<Option<Baseline>>,
}

/// A materialized, executable sweep: the output of [`Experiment::plan`].
///
/// The plan owns the validated experiment, the flattened cell list (grid
/// order: workload-major, seed-minor), the resumed-record matches, the
/// fork bounds, and the family table. It is immutable and [`Sync`]: cells
/// can be executed from any number of threads, and results are
/// byte-identical regardless of execution order (cells are independent
/// simulations; families only share *read-only* checkpoints once their
/// baseline is computed).
pub struct SweepPlan {
    exp: Experiment,
    /// One shared program per (workload, budget) coordinate.
    programs: Vec<Vec<Arc<Program>>>,
    cells: Vec<Cell>,
    /// Per cell: the prior record serving it, when resuming.
    resumed: Vec<Option<RunRecord>>,
    /// Per cell: the fork bound (live faulty cells only).
    bounds: Vec<Option<u64>>,
    families: Vec<Family>,
    /// Per cell: index into `families`, for cells a family serves.
    cell_family: Vec<Option<usize>>,
}

impl SweepPlan {
    /// Materializes a validated experiment into an executable plan.
    pub(crate) fn new(exp: Experiment) -> Result<Self, ExperimentError> {
        exp.validate()?;

        // Generate each distinct (workload, budget) program once, up
        // front, behind an `Arc`: cells share the image by reference
        // count instead of deep-copying instructions and data per cell.
        let programs: Vec<Vec<Arc<Program>>> = exp
            .workloads
            .iter()
            .map(|w| {
                exp.budgets
                    .iter()
                    .map(|&b| Arc::new(w.program_for(b)))
                    .collect()
            })
            .collect();

        let cells = enumerate_cells(&exp);

        // Cells already present in the prior records are not re-simulated.
        let resumed: Vec<Option<RunRecord>> = cells
            .iter()
            .map(|cell| {
                let id = cell_identity(&exp, cell);
                exp.prior
                    .iter()
                    .find(|p| p.ok() && p.same_identity(&id))
                    .cloned()
            })
            .collect();

        // Fork bounds, computed once per live faulty cell (the scan
        // replays the injector's Bernoulli stream, so it is worth caching
        // between the planning pass and the cell run).
        let bounds: Vec<Option<u64>> = if exp.checkpointing {
            cells
                .iter()
                .zip(&resumed)
                .map(|(cell, resumed)| {
                    (resumed.is_none() && cell.rate_pm > 0.0).then(|| {
                        let horizon = fork_horizon(cell.budget, &exp.models[cell.model]);
                        // The bound depends only on the Bernoulli stream
                        // (rate, seed) — a site mix cannot move it.
                        cell_injector(&exp, cell)
                            .first_possible_fire(horizon)
                            .unwrap_or(horizon)
                    })
                })
                .collect()
        } else {
            vec![None; cells.len()]
        };

        let families = if exp.checkpointing {
            plan_families(&cells, &resumed, &bounds)
        } else {
            Vec::new()
        };
        let cell_family = cells
            .iter()
            .map(|cell| {
                families
                    .iter()
                    .position(|f| (f.workload, f.budget_idx, f.model) == cell.family_key())
            })
            .collect();

        Ok(Self {
            exp,
            programs,
            cells,
            resumed,
            bounds,
            families,
            cell_family,
        })
    }

    /// Number of grid cells (equal to [`Experiment::cells`]).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty (it never is for a validated experiment,
    /// but the convention pairs with [`SweepPlan::len`]).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The identity (configuration) half of cell `idx`'s record.
    pub fn identity(&self, idx: usize) -> RunRecord {
        cell_identity(&self.exp, &self.cells[idx])
    }

    /// The prior record serving cell `idx`, when the experiment was built
    /// with [`Experiment::resume_from`] records matching it. Such cells
    /// are never re-simulated: [`SweepPlan::run_cell`] returns the prior
    /// record verbatim.
    pub fn prior(&self, idx: usize) -> Option<&RunRecord> {
        self.resumed[idx].as_ref()
    }

    /// The number of cells that still need simulating (not served by a
    /// prior record).
    pub fn runnable(&self) -> usize {
        self.resumed.iter().filter(|r| r.is_none()).count()
    }

    /// Number of family baselines this plan will run.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// The worker-thread cap configured on the experiment (`0` = one per
    /// available core), resolved against the number of runnable cells.
    pub fn workers(&self) -> usize {
        match self.exp.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(self.runnable().max(1))
        .max(1)
    }

    /// Runnable (non-resumed) cell indices grouped into **shards**: cells
    /// of one (workload, budget, model) family land in one shard, so a
    /// worker that executes a shard end-to-end reuses the family's
    /// checkpointed baseline for every fork without ever contending on it.
    /// Shards are ordered by their first cell index and cells within a
    /// shard ascend, so shard iteration order is deterministic.
    pub fn shards(&self) -> Vec<Vec<usize>> {
        let mut shards: Vec<((usize, usize, usize), Vec<usize>)> = Vec::new();
        for (idx, cell) in self.cells.iter().enumerate() {
            if self.resumed[idx].is_some() {
                continue;
            }
            let key = cell.family_key();
            match shards.iter_mut().find(|(k, _)| *k == key) {
                Some((_, shard)) => shard.push(idx),
                None => shards.push((key, vec![idx])),
            }
        }
        shards.into_iter().map(|(_, shard)| shard).collect()
    }

    /// Computes family `fi`'s baseline if it has not been computed yet.
    /// The one-shot runner calls this from a worker pool to get
    /// baseline-level parallelism before the cell wave; the daemon skips
    /// it and lets [`SweepPlan::run_cell`] warm baselines lazily, one per
    /// shard.
    pub fn prepare_family(&self, fi: usize) {
        drop(self.baseline_guard(&self.families[fi]));
    }

    /// Executes cell `idx` and returns its record: the prior record
    /// verbatim for resumed cells, the family baseline's result for a
    /// fault-free cell whose family ran one, a forked run for a faulty
    /// cell with a usable checkpoint, and a cold run otherwise. All four
    /// paths produce byte-identical records — the plan changes what a
    /// record *costs*, never what it says.
    pub fn run_cell(&self, idx: usize) -> RunRecord {
        self.run_cell_observed(idx).0
    }

    /// As [`SweepPlan::run_cell`], additionally reporting which execution
    /// path produced the record and the cell's stage profile (empty
    /// unless `FTSIM_PROFILE` / [`ftsim_core::profile::set_enabled`] is
    /// on). The extras are observability only — the record itself is
    /// byte-identical to what [`SweepPlan::run_cell`] returns.
    ///
    /// The profile is drained from this worker thread around the cell's
    /// simulation; when this call is also the one that (lazily) computes
    /// the family baseline, the baseline's cycles are attributed to this
    /// cell's profile.
    pub fn run_cell_observed(&self, idx: usize) -> (RunRecord, CellPath, StageProfile) {
        if let Some(prior) = &self.resumed[idx] {
            obs().cells[CellPath::Resumed as usize].inc();
            return (prior.clone(), CellPath::Resumed, StageProfile::default());
        }
        profile::reset();
        let (record, path, simulated) = self.run_cell_inner(idx);
        let stage_profile = profile::take();
        let m = obs();
        m.cells[path as usize].inc();
        m.sim_cycles.add(simulated.0);
        m.sim_instructions.add(simulated.1);
        (record, path, stage_profile)
    }

    /// The four-path cell execution; returns the record, the path taken
    /// and `(cycles, instructions)` **actually simulated by this call**
    /// (a fork's post-checkpoint suffix; zero for baseline-served cells —
    /// the baseline run counts when it executes, inside
    /// [`SweepPlan::baseline_guard`]).
    fn run_cell_inner(&self, idx: usize) -> (RunRecord, CellPath, (u64, u64)) {
        let cell = &self.cells[idx];
        let record = cell_identity(&self.exp, cell);

        if let Some(fi) = self.cell_family[idx] {
            let family = &self.families[fi];
            let baseline = self.baseline_guard(family);
            let (outcome, checkpoints) = baseline.as_ref().expect("guard fills the baseline");
            if cell.rate_pm == 0.0 {
                // The baseline is this cell's simulation.
                let record = match outcome {
                    Ok(result) => record.fill_outcome(result),
                    Err(e) => record.fill_error(e.clone()),
                };
                return (record, CellPath::Baseline, (0, 0));
            }
            // Fork: newest checkpoint at or before the first possible
            // injection (horizon-capped by the planning pass, so every
            // candidate lies in the provably fault-free region).
            let bound = self.bounds[idx].expect("live faulty cells have a bound");
            let fork_from = checkpoints
                .iter()
                .rev()
                .find(|cp| cp.draws() <= bound)
                .filter(|cp| cp.cycle() > 0)
                .cloned();
            drop(baseline); // release the family lock before simulating
            if let Some(cp) = fork_from {
                if std::env::var_os("FTSIM_FORK_DEBUG").is_some() {
                    eprintln!(
                        "fork: rate={} seed={} bound={bound} from cycle {} (draws {})",
                        cell.rate_pm,
                        cell.seed,
                        cp.cycle(),
                        cp.draws()
                    );
                }
                let builder = self
                    .cell_builder(cell)
                    .injector(cell_injector(&self.exp, cell));
                let fork_cycle = cp.cycle();
                let fork_retired = cp.retired_instructions();
                let record = match builder.build() {
                    Ok(mut sim) => {
                        let draws = cp.draws();
                        let proc = sim.processor_mut();
                        proc.restore_owned(cp);
                        proc.injector_mut().fast_forward_fault_free(draws);
                        match sim.run() {
                            Ok(result) => record.fill_outcome(&result),
                            Err(e) => record.fill_error(e.to_string()),
                        }
                    }
                    Err(e) => record.fill_error(ftsim_core::SimError::Invalid(e).to_string()),
                };
                // The record's totals include the restored prefix; only
                // the suffix beyond the checkpoint was simulated here.
                let simulated = (
                    record.cycles.saturating_sub(fork_cycle),
                    record.retired_instructions.saturating_sub(fork_retired),
                );
                return (record, CellPath::Forked, simulated);
            }
            // No usable checkpoint (first fire precedes the first
            // snapshot): fall through to a cold run.
        }

        let mut builder = self.cell_builder(cell);
        if cell.rate_pm > 0.0 {
            builder = builder.injector(cell_injector(&self.exp, cell));
        }
        let record = match builder.run() {
            Ok(result) => record.fill_outcome(&result),
            Err(e) => record.fill_error(e.to_string()),
        };
        let simulated = (record.cycles, record.retired_instructions);
        (record, CellPath::Cold, simulated)
    }

    /// Runs every cell across `workers()` threads and returns records in
    /// grid order — the execution behind [`Experiment::run`].
    pub(crate) fn run_all(&self) -> Vec<RunRecord> {
        let workers = self.workers();
        let pool = |n_tasks: usize, task: &(dyn Fn(usize) + Sync)| {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers.min(n_tasks).max(1) {
                    scope.spawn(|| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_tasks {
                            break;
                        }
                        task(idx);
                    });
                }
            });
        };

        // Wave 1: family baselines (checkpoint producers), in parallel.
        pool(self.families.len(), &|fi| self.prepare_family(fi));

        // Wave 2: every cell, in parallel — resumed, baseline-served,
        // forked or cold.
        let slots: Vec<Mutex<Option<RunRecord>>> =
            self.cells.iter().map(|_| Mutex::new(None)).collect();
        pool(self.cells.len(), &|idx| {
            *slots[idx].lock().expect("slot lock") = Some(self.run_cell(idx));
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every cell ran")
            })
            .collect()
    }

    /// Locks family `f`'s baseline slot, computing the baseline first if
    /// this is the first cell to need it. Blocking siblings while the
    /// baseline runs is intentional: they cannot make progress without it.
    fn baseline_guard<'a>(&self, f: &'a Family) -> MutexGuard<'a, Option<Baseline>> {
        let mut slot = f.baseline.lock().expect("family lock");
        if slot.is_none() {
            *slot = Some(self.run_baseline(f));
        }
        slot
    }

    /// Runs one family's fault-free baseline, collecting checkpoints.
    fn run_baseline(&self, f: &Family) -> Baseline {
        let builder = self.coordinate_builder(f.workload, f.budget_idx, f.model, f.budget);
        let baseline: Baseline = match builder.build() {
            Ok(sim) => match f.snapshot_horizon {
                // Faulty siblings exist: collect checkpoints for them.
                Some(horizon) => {
                    let (result, checkpoints) =
                        sim.run_with_checkpoints(checkpoint_interval(f.budget), horizon);
                    (result.map_err(|e| e.to_string()), checkpoints)
                }
                // The family is only fault-free cells: snapshots would
                // serve nobody, so the baseline is a plain (free) run.
                None => (sim.run().map_err(|e| e.to_string()), Vec::new()),
            },
            Err(e) => (
                Err(ftsim_core::SimError::Invalid(e).to_string()),
                Vec::new(),
            ),
        };
        let m = obs();
        if let Ok(result) = &baseline.0 {
            m.sim_cycles.add(result.cycles);
            m.sim_instructions.add(result.retired_instructions);
        }
        m.checkpoints_taken.add(baseline.1.len() as u64);
        m.checkpoint_bytes
            .add(baseline.1.iter().map(Checkpoint::approx_bytes).sum());
        baseline
    }

    fn cell_builder(&self, cell: &Cell) -> SimBuilder {
        self.coordinate_builder(cell.workload, cell.budget_idx, cell.model, cell.budget)
    }

    /// The builder every run of a (workload, budget, model) coordinate
    /// starts from — config, shared program, oracle mode, and the cell's
    /// budget with any blanket limits override adjusting ceilings but
    /// never repealing the budgets axis. Baseline, forked and cold paths
    /// all go through here so they cannot drift apart; callers add only
    /// the injector.
    fn coordinate_builder(
        &self,
        workload: usize,
        budget_idx: usize,
        model: usize,
        budget: u64,
    ) -> SimBuilder {
        let builder = Simulator::builder()
            .config(self.exp.models[model].clone())
            .program_shared(Arc::clone(&self.programs[workload][budget_idx]))
            .oracle(self.exp.oracle)
            .budget(budget);
        match self.exp.limits {
            Some(limits) => builder.limits(RunLimits {
                max_instructions: limits.max_instructions.min(budget),
                ..limits
            }),
            None => builder,
        }
    }
}

/// The (workload, budget, model) coordinate shared by every cell that
/// reuses one fault-free prefix — the unit of checkpoint sharing inside
/// a process and of claim/lease ownership across cooperating `ftsimd`
/// processes.
///
/// A `FamilyId` is derived purely from a record's identity fields, so
/// any two processes looking at the same grid (or the same streamed
/// `cells.csv`) agree on the family partition without coordination.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FamilyId {
    /// Workload (benchmark profile) name.
    pub workload: String,
    /// Committed-instruction budget.
    pub budget: u64,
    /// Machine model name.
    pub model: String,
}

impl FamilyId {
    /// The family of a record (identity or full — only the identity
    /// fields are read).
    pub fn of_record(r: &RunRecord) -> Self {
        Self {
            workload: r.workload.clone(),
            budget: r.budget,
            model: r.model.clone(),
        }
    }

    /// A filesystem-safe slug naming this family, used for per-family
    /// claim files: lowercase alphanumerics with `-` separators, e.g.
    /// `gcc-4000-ss-2`. Distinct registry names yield distinct slugs
    /// (workload and model names are plain ASCII identifiers).
    pub fn slug(&self) -> String {
        let squash = |s: &str| {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                if c.is_ascii_alphanumeric() {
                    out.push(c.to_ascii_lowercase());
                } else if !out.ends_with('-') {
                    out.push('-');
                }
            }
            out.trim_matches('-').to_string()
        };
        format!(
            "{}-{}-{}",
            squash(&self.workload),
            self.budget,
            squash(&self.model)
        )
    }
}

impl std::fmt::Display for FamilyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {} on {}", self.workload, self.budget, self.model)
    }
}

/// Groups identity records by family, preserving grid order: families
/// appear in first-cell order and each family's member indices ascend.
/// This is the partition both the in-process shard scheduler
/// ([`SweepPlan::shards`]) and the multi-process claim table agree on.
pub fn group_families(identities: &[RunRecord]) -> Vec<(FamilyId, Vec<usize>)> {
    let mut families: Vec<(FamilyId, Vec<usize>)> = Vec::new();
    for (idx, r) in identities.iter().enumerate() {
        let id = FamilyId::of_record(r);
        match families.iter_mut().find(|(f, _)| *f == id) {
            Some((_, members)) => members.push(idx),
            None => families.push((id, vec![idx])),
        }
    }
    families
}

/// The flattened cell list, in deterministic grid order (workload-major,
/// seed-minor). This is the **single definition of grid order** — record
/// assembly ([`SweepPlan::run_all`]) and identity enumeration
/// ([`Experiment::identities`]) both derive from it, so they cannot
/// drift apart.
pub(crate) fn enumerate_cells(exp: &Experiment) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(exp.cells());
    for (wi, _) in exp.workloads.iter().enumerate() {
        for (mi, _) in exp.models.iter().enumerate() {
            for &rate_pm in &exp.fault_rates_pm {
                for (xi, _) in exp.site_mixes.iter().enumerate() {
                    for (bi, &budget) in exp.budgets.iter().enumerate() {
                        for &seed in &exp.seeds {
                            cells.push(Cell {
                                workload: wi,
                                budget_idx: bi,
                                model: mi,
                                rate_pm,
                                mix: xi,
                                budget,
                                seed,
                            });
                        }
                    }
                }
            }
        }
    }
    cells
}

/// The identity half of a cell's record (used for resume matching and as
/// the base of the final record).
pub(crate) fn cell_identity(exp: &Experiment, cell: &Cell) -> RunRecord {
    let workload = &exp.workloads[cell.workload];
    RunRecord::identity(
        workload.name(),
        workload.suite(),
        &exp.models[cell.model],
        cell.rate_pm,
        exp.site_mixes[cell.mix].name(),
        cell.seed,
        cell.budget,
        exp.oracle,
    )
}

/// The fault injector a cell runs under (fresh, before any draws).
fn cell_injector(exp: &Experiment, cell: &Cell) -> FaultInjector {
    debug_assert!(cell.rate_pm > 0.0);
    FaultInjector::random_with_mix(
        per_million(cell.rate_pm),
        cell.seed,
        &exp.site_mixes[cell.mix],
    )
}

/// Decides which families run a checkpointed baseline.
///
/// A family — the cells sharing (workload, budget, model) — runs one when
/// it contains a live fault-free cell (the baseline *is* that cell's run,
/// so checkpoints come for free), or when some live faulty cell's first
/// possible injection lies far enough in (≥ [`MIN_WORTHWHILE_FORK_DRAWS`]
/// draws) that skipping the prefix pays for the extra baseline run.
fn plan_families(
    cells: &[Cell],
    resumed: &[Option<RunRecord>],
    bounds: &[Option<u64>],
) -> Vec<Family> {
    let mut families: Vec<Family> = Vec::new();
    for (i, (cell, resumed)) in cells.iter().zip(resumed).enumerate() {
        if resumed.is_some() {
            continue;
        }
        let key = cell.family_key();
        let family = match families
            .iter_mut()
            .find(|f| (f.workload, f.budget_idx, f.model) == key)
        {
            Some(f) => f,
            None => {
                families.push(Family {
                    workload: cell.workload,
                    budget_idx: cell.budget_idx,
                    model: cell.model,
                    budget: cell.budget,
                    worthwhile: false,
                    snapshot_horizon: None,
                    baseline: Mutex::new(None),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if cell.rate_pm == 0.0 {
            family.worthwhile = true; // the baseline is this very cell
        } else {
            let bound = bounds[i].expect("live faulty cells have a bound");
            if bound >= MIN_WORTHWHILE_FORK_DRAWS {
                family.worthwhile = true;
            }
            // Snapshots are useful up to the *largest* divergence point
            // any live faulty sibling can fork at.
            family.snapshot_horizon = Some(family.snapshot_horizon.unwrap_or(0).max(bound));
        }
    }
    families.retain(|f| f.worthwhile);
    families
}
