//! The flat, serializable result of one experiment cell.

use ftsim_core::{MachineConfig, SimResult};
use ftsim_isa::MixClass;
use ftsim_stats::{csv, JsonValue};
use std::fmt;

/// Record (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// The CSV header row does not match [`RunRecord::csv_header`].
    HeaderMismatch {
        /// The offending header row.
        found: String,
    },
    /// A row has the wrong number of cells.
    WrongWidth {
        /// Cells found.
        found: usize,
        /// Cells expected.
        expected: usize,
    },
    /// A cell or JSON field failed to convert.
    BadField {
        /// Field name.
        field: &'static str,
        /// Conversion failure message.
        message: String,
    },
    /// The JSON document has the wrong shape.
    BadDocument(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::HeaderMismatch { found } => {
                write!(f, "CSV header mismatch: got `{found}`")
            }
            RecordError::WrongWidth { found, expected } => {
                write!(f, "row has {found} cells, expected {expected}")
            }
            RecordError::BadField { field, message } => {
                write!(f, "field `{field}`: {message}")
            }
            RecordError::BadDocument(msg) => write!(f, "bad document: {msg}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// A field that can cross the CSV/JSON boundary losslessly.
trait Field: Sized {
    fn to_cell(&self) -> String;
    fn from_cell(cell: &str) -> Result<Self, String>;
    fn to_json(&self) -> JsonValue;
    fn from_json(v: &JsonValue) -> Result<Self, String>;
}

impl Field for String {
    fn to_cell(&self) -> String {
        self.clone()
    }
    fn from_cell(cell: &str) -> Result<Self, String> {
        Ok(cell.to_string())
    }
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v}"))
    }
}

impl Field for bool {
    fn to_cell(&self) -> String {
        self.to_string()
    }
    fn from_cell(cell: &str) -> Result<Self, String> {
        cell.parse().map_err(|_| format!("bad bool `{cell}`"))
    }
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl Field for u8 {
    fn to_cell(&self) -> String {
        self.to_string()
    }
    fn from_cell(cell: &str) -> Result<Self, String> {
        cell.parse().map_err(|_| format!("bad u8 `{cell}`"))
    }
    fn to_json(&self) -> JsonValue {
        JsonValue::U64(u64::from(*self))
    }
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_u64()
            .and_then(|x| u8::try_from(x).ok())
            .ok_or_else(|| format!("expected u8, got {v}"))
    }
}

impl Field for u64 {
    fn to_cell(&self) -> String {
        self.to_string()
    }
    fn from_cell(cell: &str) -> Result<Self, String> {
        cell.parse().map_err(|_| format!("bad u64 `{cell}`"))
    }
    fn to_json(&self) -> JsonValue {
        JsonValue::U64(*self)
    }
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_u64().ok_or_else(|| format!("expected u64, got {v}"))
    }
}

impl Field for f64 {
    fn to_cell(&self) -> String {
        // Shortest representation that parses back to identical bits.
        format!("{self}")
    }
    fn from_cell(cell: &str) -> Result<Self, String> {
        cell.parse().map_err(|_| format!("bad f64 `{cell}`"))
    }
    fn to_json(&self) -> JsonValue {
        JsonValue::F64(*self)
    }
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        // The writer renders non-finite floats as `null` (JSON has no
        // NaN/inf literal); accept it back so round trips never fail.
        if matches!(v, JsonValue::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v}"))
    }
}

/// One experiment cell's complete result as a flat row.
///
/// Every field is a scalar so records export losslessly to CSV and JSON
/// and parse back; [`PartialEq`] compares bit-exactly (floats are
/// serialized with shortest-round-trip formatting).
///
/// A failed cell (machine wedged, cycle budget overrun — legitimately
/// possible at extreme fault rates, §2.2) is still a record: [`RunRecord::ok`]
/// is `false`, [`RunRecord::error`] carries the message, and the
/// performance fields are zero.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Workload (benchmark) name.
    pub workload: String,
    /// Workload suite (e.g. `SPEC95 INT`), empty for ad-hoc programs.
    pub suite: String,
    /// Machine model name (e.g. `SS-2`).
    pub model: String,
    /// Redundancy degree `R`.
    pub r: u8,
    /// Whether commit-time disagreements are resolved by majority election.
    pub majority: bool,
    /// Copies that must agree for acceptance.
    pub threshold: u8,
    /// Injected fault rate in faults per million instructions.
    pub fault_rate_pm: f64,
    /// Fault-site mix name (a [`ftsim_faults::SiteMix`] preset such as
    /// `uniform` or `addr-heavy`) — part of the cell's identity.
    pub site_mix: String,
    /// Fault-injector seed for this cell.
    pub seed: u64,
    /// Committed-instruction budget for this cell.
    pub budget: u64,
    /// Oracle mode the cell ran under ([`ftsim_core::OracleMode::name`]:
    /// `off` or `final`) — part of the cell's identity, because a record
    /// produced without oracle verification must not satisfy a resumed
    /// grid that demands it.
    pub oracle: String,
    /// Error message for a failed cell; empty on success.
    pub error: String,
    /// Whether `halt` committed (false when the budget stopped the run).
    pub halted: bool,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Committed architectural instructions.
    pub retired_instructions: u64,
    /// Committed architectural instructions per cycle.
    pub ipc: f64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Branch-rewind (selective squash) events.
    pub branch_rewinds: u64,
    /// Full rewinds triggered by commit-stage fault detection.
    pub fault_rewinds: u64,
    /// Full rewinds triggered by the committed-PC control-flow check.
    pub pc_check_rewinds: u64,
    /// Majority elections that out-voted a corrupted copy.
    pub majority_elections: u64,
    /// Mean observed full-rewind penalty in cycles (the paper's `W`).
    pub mean_rewind_penalty: f64,
    /// Maximum observed single-rewind penalty in cycles.
    pub rewind_penalty_max: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Faults detected at commit.
    pub faults_detected: u64,
    /// Faults out-voted by majority election.
    pub faults_outvoted: u64,
    /// Faults architecturally masked.
    pub faults_masked: u64,
    /// Faults squashed on the wrong path.
    pub faults_squashed_wrong_path: u64,
    /// Faults flushed by an unrelated rewind.
    pub faults_squashed_by_rewind: u64,
    /// Faults that escaped to committed state.
    pub faults_escaped: u64,
    /// Faults still unresolved at run end (0 for a drained run).
    pub faults_pending: u64,
    /// Dispatched RUU entries (including squashed ones).
    pub dispatched_entries: u64,
    /// Committed RUU entries (= instructions × R).
    pub retired_entries: u64,
    /// Dispatch stall cycles with a full RUU.
    pub dispatch_stalls_ruu: u64,
    /// Dispatch stall cycles with a full LSQ.
    pub dispatch_stalls_lsq: u64,
    /// Mean RUU occupancy per cycle.
    pub mean_ruu_occupancy: f64,
    /// Loads satisfied by store-to-load forwarding.
    pub load_forwards: u64,
    /// L1 instruction cache miss rate.
    pub il1_miss_rate: f64,
    /// L1 data cache miss rate.
    pub dl1_miss_rate: f64,
    /// Unified L2 miss rate.
    pub l2_miss_rate: f64,
    /// Committed dynamic-mix fraction: loads and stores.
    pub mix_mem: f64,
    /// Committed dynamic-mix fraction: integer (incl. branches).
    pub mix_int: f64,
    /// Committed dynamic-mix fraction: FP add class.
    pub mix_fp_add: f64,
    /// Committed dynamic-mix fraction: FP multiplies.
    pub mix_fp_mul: f64,
    /// Committed dynamic-mix fraction: FP divides.
    pub mix_fp_div: f64,
    /// FNV-1a digest of the final committed architectural state
    /// (registers, committed next-PC, halt flag, memory contents). At
    /// equal `retired_instructions`, a digest differing from the
    /// family's fault-free baseline means escaped faults silently
    /// corrupted committed state (SDC).
    pub state_digest: u64,
    /// Detection events measured (faults detected or out-voted at
    /// commit).
    pub detect_events: u64,
    /// Sum of injection→resolution detection latencies, in cycles.
    pub detect_latency_cycles: u64,
    /// Sum of injection→resolution detection latencies, in retired
    /// instructions.
    pub detect_latency_insts: u64,
    /// Largest single detection latency observed, in cycles.
    pub detect_latency_max: u64,
    /// Per-site fate counts in the compact
    /// [`ftsim_faults::SiteCounts`] encoding (empty when no faults were
    /// injected).
    pub site_fates: String,
}

/// Applies a macro to every `RunRecord` field, in serialization order.
macro_rules! with_fields {
    ($m:ident) => {
        $m! {
            workload, suite, model, r, majority, threshold, fault_rate_pm,
            site_mix, seed, budget, oracle, error, halted, cycles,
            retired_instructions, ipc, branches, branch_mispredicts,
            branch_rewinds, fault_rewinds, pc_check_rewinds,
            majority_elections, mean_rewind_penalty, rewind_penalty_max,
            faults_injected, faults_detected, faults_outvoted,
            faults_masked, faults_squashed_wrong_path,
            faults_squashed_by_rewind, faults_escaped, faults_pending,
            dispatched_entries, retired_entries, dispatch_stalls_ruu,
            dispatch_stalls_lsq, mean_ruu_occupancy, load_forwards,
            il1_miss_rate, dl1_miss_rate, l2_miss_rate, mix_mem, mix_int,
            mix_fp_add, mix_fp_mul, mix_fp_div, state_digest,
            detect_events, detect_latency_cycles, detect_latency_insts,
            detect_latency_max, site_fates
        }
    };
}

macro_rules! impl_record_serde {
    ($($field:ident),+ $(,)?) => {
        impl RunRecord {
            /// Number of columns in the flat representation.
            pub const WIDTH: usize = [$(stringify!($field)),+].len();

            /// Column names, in serialization order.
            pub const FIELDS: [&'static str; Self::WIDTH] = [$(stringify!($field)),+];

            /// The CSV header row matching [`RunRecord::to_csv_row`].
            pub fn csv_header() -> String {
                csv::join_row(Self::FIELDS)
            }

            /// This record as one CSV row (no trailing newline).
            pub fn to_csv_row(&self) -> String {
                csv::join_row(vec![$(Field::to_cell(&self.$field)),+])
            }

            /// Parses one parsed-CSV row (cells in header order).
            ///
            /// # Errors
            ///
            /// [`RecordError::WrongWidth`] or [`RecordError::BadField`].
            pub fn from_cells(cells: &[String]) -> Result<Self, RecordError> {
                if cells.len() != Self::WIDTH {
                    return Err(RecordError::WrongWidth {
                        found: cells.len(),
                        expected: Self::WIDTH,
                    });
                }
                let mut iter = cells.iter();
                Ok(Self {
                    $($field: Field::from_cell(iter.next().expect("width checked"))
                        .map_err(|message| RecordError::BadField {
                            field: stringify!($field),
                            message,
                        })?,)+
                })
            }

            /// This record as a JSON object.
            pub fn to_json_value(&self) -> JsonValue {
                JsonValue::obj(vec![
                    $((stringify!($field).to_string(), Field::to_json(&self.$field)),)+
                ])
            }

            /// Parses a JSON object produced by [`RunRecord::to_json_value`].
            ///
            /// # Errors
            ///
            /// [`RecordError::BadField`] for a missing or mistyped field.
            pub fn from_json_value(v: &JsonValue) -> Result<Self, RecordError> {
                Ok(Self {
                    $($field: Field::from_json(v.get(stringify!($field)).ok_or(
                        RecordError::BadField {
                            field: stringify!($field),
                            message: "missing".to_string(),
                        },
                    )?)
                    .map_err(|message| RecordError::BadField {
                        field: stringify!($field),
                        message,
                    })?,)+
                })
            }
        }
    };
}

with_fields!(impl_record_serde);

impl RunRecord {
    /// Whether the cell simulated successfully.
    pub fn ok(&self) -> bool {
        self.error.is_empty()
    }

    /// Whether `self` and `other` describe the same grid cell: equal
    /// workload, suite, model, redundancy shape, fault rate (bit-exact),
    /// site mix, seed, budget and oracle mode. Outcome fields are ignored
    /// — this is how
    /// [`Experiment::resume_from`](crate::harness::Experiment::resume_from)
    /// decides a cell has already been simulated. Including the oracle
    /// mode means records swept with [`ftsim_core::OracleMode::Off`]
    /// never satisfy a resumed grid that demands
    /// [`ftsim_core::OracleMode::Final`] verification (and vice versa) —
    /// such cells are simply re-simulated.
    pub fn same_identity(&self, other: &RunRecord) -> bool {
        self.workload == other.workload
            && self.suite == other.suite
            && self.model == other.model
            && self.r == other.r
            && self.majority == other.majority
            && self.threshold == other.threshold
            && self.fault_rate_pm.to_bits() == other.fault_rate_pm.to_bits()
            && self.site_mix == other.site_mix
            && self.seed == other.seed
            && self.budget == other.budget
            && self.oracle == other.oracle
    }

    /// A compact, stable label for this record's grid cell, built from
    /// identity fields only. Distinct cells of one experiment grid get
    /// distinct labels (the redundancy shape and suite are implied by
    /// the model and workload names). Used for cell-granular bookkeeping
    /// that outlives a single process, like the daemon's stuck-cell
    /// watchdog strikes, and for error messages naming a cell.
    pub fn cell_label(&self) -> String {
        format!(
            "{}/{}/b{}/rate{}/{}/seed{}",
            self.workload, self.model, self.budget, self.fault_rate_pm, self.site_mix, self.seed
        )
    }

    /// Builds the identity (configuration) part of a record; outcome
    /// fields start zeroed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn identity(
        workload: &str,
        suite: &str,
        config: &MachineConfig,
        fault_rate_pm: f64,
        site_mix: &str,
        seed: u64,
        budget: u64,
        oracle: ftsim_core::OracleMode,
    ) -> Self {
        Self {
            workload: workload.to_string(),
            suite: suite.to_string(),
            model: config.name.clone(),
            r: config.redundancy.r,
            majority: config.redundancy.majority,
            threshold: config.redundancy.threshold,
            fault_rate_pm,
            site_mix: site_mix.to_string(),
            seed,
            budget,
            oracle: oracle.name().to_string(),
            ..Self::default()
        }
    }

    /// Fills the outcome fields from a completed simulation.
    pub(crate) fn fill_outcome(mut self, result: &SimResult) -> Self {
        let s = &result.stats;
        self.error = String::new();
        self.halted = result.halted;
        self.cycles = result.cycles;
        self.retired_instructions = result.retired_instructions;
        self.ipc = result.ipc;
        self.branches = s.branches;
        self.branch_mispredicts = s.branch_mispredicts;
        self.branch_rewinds = s.branch_rewinds;
        self.fault_rewinds = s.fault_rewinds;
        self.pc_check_rewinds = s.pc_check_rewinds;
        self.majority_elections = s.majority_elections;
        self.mean_rewind_penalty = s.mean_rewind_penalty();
        self.rewind_penalty_max = s.rewind_penalty_max;
        self.faults_injected = s.faults.injected;
        self.faults_detected = s.faults.detected;
        self.faults_outvoted = s.faults.outvoted;
        self.faults_masked = s.faults.masked;
        self.faults_squashed_wrong_path = s.faults.squashed_wrong_path;
        self.faults_squashed_by_rewind = s.faults.squashed_by_rewind;
        self.faults_escaped = s.faults.escaped;
        self.faults_pending = s.faults.pending;
        self.dispatched_entries = s.dispatched_entries;
        self.retired_entries = s.retired_entries;
        self.dispatch_stalls_ruu = s.dispatch_stalls[0];
        self.dispatch_stalls_lsq = s.dispatch_stalls[1];
        self.mean_ruu_occupancy = s.mean_ruu_occupancy();
        self.load_forwards = s.load_forwards;
        self.il1_miss_rate = s.il1.miss_rate();
        self.dl1_miss_rate = s.dl1.miss_rate();
        self.l2_miss_rate = s.l2.miss_rate();
        self.mix_mem = s.mix_fraction(MixClass::Mem);
        self.mix_int = s.mix_fraction(MixClass::Int);
        self.mix_fp_add = s.mix_fraction(MixClass::FpAdd);
        self.mix_fp_mul = s.mix_fraction(MixClass::FpMul);
        self.mix_fp_div = s.mix_fraction(MixClass::FpDiv);
        self.state_digest = result.state_digest;
        self.detect_events = s.fault_latency.events;
        self.detect_latency_cycles = s.fault_latency.cycles_sum;
        self.detect_latency_insts = s.fault_latency.instructions_sum;
        self.detect_latency_max = s.fault_latency.cycles_max;
        self.site_fates = s.fault_sites.to_compact();
        self
    }

    /// Marks the record failed with `message`.
    pub(crate) fn fill_error(mut self, message: String) -> Self {
        self.error = message;
        self
    }
}

/// Looks the first *successful* record for `(workload, model)` up in grid
/// output; failed cells are skipped (use [`expect_record`] when a missing
/// or failed cell is an experiment bug worth aborting on).
pub fn record_for<'a>(
    records: &'a [RunRecord],
    workload: &str,
    model: &str,
) -> Option<&'a RunRecord> {
    records
        .iter()
        .find(|r| r.workload == workload && r.model == model && r.ok())
}

/// The successful record for `(workload, model)` in grid output.
///
/// # Panics
///
/// Panics when the cell is absent from the grid *or* present but failed —
/// in the latter case the panic carries the cell's own error message
/// rather than a misleading "missing" claim.
pub fn expect_record<'a>(records: &'a [RunRecord], workload: &str, model: &str) -> &'a RunRecord {
    let cell = records
        .iter()
        .find(|r| r.workload == workload && r.model == model)
        .unwrap_or_else(|| panic!("{workload} on {model} missing from grid output"));
    assert!(cell.ok(), "{workload} on {model} failed: {}", cell.error);
    cell
}

/// Loads prior records for [`Experiment::resume_from`](crate::harness::Experiment::resume_from)
/// from a CSV written by [`save_csv`]. Fail-soft by design: `fresh`
/// requests, a missing file, or a corrupt/truncated document (e.g. a
/// run killed mid-write) all yield an empty list — the grid then simply
/// re-simulates — with a warning on stderr for the corrupt case.
pub fn load_resume_csv(path: impl AsRef<std::path::Path>, fresh: bool) -> Vec<RunRecord> {
    let path = path.as_ref();
    if fresh {
        return Vec::new();
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    match from_csv(&text) {
        Ok(records) => {
            println!(
                "resuming from {} ({} prior records; pass --fresh to re-simulate)",
                path.display(),
                records.len()
            );
            records
        }
        Err(e) => {
            eprintln!(
                "warning: ignoring unreadable resume file {} ({e}); re-simulating",
                path.display()
            );
            Vec::new()
        }
    }
}

/// Writes records as a resumable CSV at `path`, creating parent
/// directories; the counterpart of [`load_resume_csv`].
///
/// # Errors
///
/// Any I/O error creating the directories or writing the file.
pub fn save_csv(path: impl AsRef<std::path::Path>, records: &[RunRecord]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_csv(records))
}

/// Serializes records to a CSV document (header + one row per record).
pub fn to_csv(records: &[RunRecord]) -> String {
    let mut out = RunRecord::csv_header();
    out.push('\n');
    for r in records {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

/// Parses a CSV document produced by [`to_csv`].
///
/// # Errors
///
/// [`RecordError`] for a wrong header, row width, or unparsable cell.
pub fn from_csv(text: &str) -> Result<Vec<RunRecord>, RecordError> {
    let rows = csv::parse(text).map_err(|e| RecordError::BadDocument(e.to_string()))?;
    let Some((header, body)) = rows.split_first() else {
        return Err(RecordError::BadDocument("empty CSV document".to_string()));
    };
    if header != &RunRecord::FIELDS[..] {
        return Err(RecordError::HeaderMismatch {
            found: header.join(","),
        });
    }
    body.iter().map(|row| RunRecord::from_cells(row)).collect()
}

/// Parses every intact record out of a possibly-corrupt CSV document,
/// returning them with the number of damaged lines discarded.
///
/// This is the crash-recovery counterpart of [`from_csv`], used by the
/// `ftsimd` daemon to reload its incremental results file after being
/// killed mid-write. Damage is skipped **wherever it sits**, not only at
/// the tail: the fabric's multi-writer append discipline means a torn
/// fragment from one process can be concatenated onto by a peer's next
/// row, leaving one merged garbage line *mid*-file with valid rows after
/// it. Every dropped line costs exactly the cells it carried — they are
/// simply re-simulated — while a parser that stopped at the first bad
/// line would hide every row behind it and re-simulate forever. A
/// document whose *header* is unreadable yields no records at all.
pub fn from_csv_tolerant(text: &str) -> (Vec<RunRecord>, usize) {
    let (records, dropped, _) = tolerant_parse(text);
    (records, dropped)
}

/// As [`from_csv_tolerant`], but returns the records with the **byte
/// length of the consumed prefix** — the boundary after the last line
/// settled for good, whether parsed or discarded (0 when nothing was). A
/// caller polling a growing log (the daemon's `results --watch`) can
/// remember the boundary and re-parse only the appended suffix on the
/// next poll instead of the whole file. An unterminated trailing line is
/// never consumed: it is either a row in flight (a live writer finishes
/// it) or a torn fragment (the next [`ftsim_stats::csv::AppendWriter`]
/// open truncates it), and both resolve at bytes the boundary has not
/// passed.
pub fn from_csv_tolerant_prefix(text: &str) -> (Vec<RunRecord>, usize) {
    let (records, _, consumed) = tolerant_parse(text);
    (records, consumed)
}

fn tolerant_parse(text: &str) -> (Vec<RunRecord>, usize, usize) {
    if text.trim().is_empty() {
        return (Vec::new(), 0, 0);
    }
    // Fast path: an undamaged, newline-terminated document.
    if text.ends_with('\n') {
        if let Ok(records) = from_csv(text) {
            return (records, 0, text.len());
        }
    }
    // Header first: without it nothing below is trustworthy.
    let Some(first_nl) = text.find('\n') else {
        return (Vec::new(), 1, 0); // unterminated header fragment
    };
    if text[..first_nl].trim_end_matches('\r') != RunRecord::csv_header() {
        return (Vec::new(), text.lines().count(), 0);
    }
    let mut records = Vec::new();
    let mut dropped = 0usize;
    let mut pos = first_nl + 1;
    let mut consumed = pos;
    while pos < text.len() {
        let Some(end) = logical_row_end(&text[pos..]) else {
            // Unterminated tail — in flight or torn, not consumed either
            // way (see `from_csv_tolerant_prefix`).
            dropped += 1;
            break;
        };
        let line = &text[pos..pos + end];
        pos += end + 1;
        consumed = pos;
        if let Ok(rows) = csv::parse(line) {
            if let [row] = rows.as_slice() {
                if let Ok(rec) = RunRecord::from_cells(row) {
                    records.push(rec);
                    continue;
                }
            }
        }
        dropped += 1;
    }
    (records, dropped, consumed)
}

/// Index of the newline ending the logical CSV row starting at `s[0]`,
/// skipping newlines embedded in quoted cells (quote-parity scan), or
/// `None` when the row runs off the end of the document unterminated.
fn logical_row_end(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Serializes records to a pretty-printed JSON array.
pub fn to_json(records: &[RunRecord]) -> String {
    JsonValue::Arr(records.iter().map(RunRecord::to_json_value).collect()).render_pretty(2)
}

/// Parses a JSON document produced by [`to_json`].
///
/// # Errors
///
/// [`RecordError`] when the document is not an array of record objects.
pub fn from_json(text: &str) -> Result<Vec<RunRecord>, RecordError> {
    let doc = JsonValue::parse(text).map_err(|e| RecordError::BadDocument(e.to_string()))?;
    let items = doc
        .as_arr()
        .ok_or_else(|| RecordError::BadDocument("expected a JSON array".to_string()))?;
    items.iter().map(RunRecord::from_json_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> RunRecord {
        RunRecord {
            workload: "fpppp".to_string(),
            suite: "SPEC95 FP".to_string(),
            model: "SS-2".to_string(),
            r: 2,
            majority: false,
            threshold: 2,
            fault_rate_pm: 3000.0,
            site_mix: "addr-heavy".to_string(),
            seed: 42,
            budget: 60_000,
            oracle: "final".to_string(),
            error: String::new(),
            halted: false,
            cycles: 123_456,
            retired_instructions: 60_010,
            ipc: 0.486_115_240_115,
            branches: 720,
            faults_injected: 17,
            faults_detected: 11,
            faults_masked: 6,
            mean_rewind_penalty: 29.636363636363637,
            mix_mem: 0.5243,
            mix_int: 0.1503,
            mix_fp_add: 0.1553,
            mix_fp_mul: 0.1684,
            mix_fp_div: 0.0016,
            state_digest: 0xdead_beef_0123_4567,
            detect_events: 11,
            detect_latency_cycles: 326,
            detect_latency_insts: 154,
            detect_latency_max: 61,
            site_fates: "res=9:0:0:0:7:0:2:0;ea=8:0:1:1:4:0:2:0".to_string(),
            ..RunRecord::default()
        }
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let records = vec![sample(), RunRecord::default()];
        let text = to_csv(&records);
        assert_eq!(from_csv(&text).unwrap(), records);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let records = vec![sample(), RunRecord::default()];
        let text = to_json(&records);
        assert_eq!(from_json(&text).unwrap(), records);
    }

    #[test]
    fn csv_quotes_error_messages() {
        let mut r = sample();
        r.error = "wedged, after \"garbage\" control flow\nat cycle 9".to_string();
        let text = to_csv(&[r.clone()]);
        let back = from_csv(&text).unwrap();
        assert_eq!(back[0].error, r.error);
        assert!(!back[0].ok());
    }

    #[test]
    fn header_and_width_agree() {
        assert_eq!(RunRecord::FIELDS.len(), RunRecord::WIDTH);
        assert!(RunRecord::csv_header().starts_with("workload,suite,model,r,"));
        let err = from_csv("nope,header\n1,2\n").unwrap_err();
        assert!(matches!(err, RecordError::HeaderMismatch { .. }));
    }

    #[test]
    fn wrong_width_reported() {
        let err = RunRecord::from_cells(&["only".to_string()]).unwrap_err();
        assert_eq!(
            err,
            RecordError::WrongWidth {
                found: 1,
                expected: RunRecord::WIDTH
            }
        );
    }

    #[test]
    fn bad_fields_reported_by_name() {
        let mut cells: Vec<String> = to_csv(&[sample()])
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .map(str::to_string)
            .collect();
        cells[3] = "not-a-number".to_string(); // the `r` column
        let err = RunRecord::from_cells(&cells).unwrap_err();
        assert!(
            matches!(err, RecordError::BadField { field: "r", .. }),
            "{err}"
        );
    }

    #[test]
    fn non_finite_floats_survive_json_round_trip() {
        // JSON has no NaN literal; the writer emits null and the parser
        // must take it back instead of failing the whole document.
        let mut r = sample();
        r.mean_rewind_penalty = f64::NAN;
        let back = from_json(&to_json(&[r])).unwrap();
        assert!(back[0].mean_rewind_penalty.is_nan());
    }

    #[test]
    fn tolerant_parse_drops_only_the_torn_tail() {
        let records = vec![sample(), RunRecord::default()];
        let mut text = to_csv(&records);
        let (back, dropped) = from_csv_tolerant(&text);
        assert_eq!((back, dropped), (records.clone(), 0));

        // A row torn mid-write (no newline, half the cells, an open
        // quote) must cost exactly that row.
        text.push_str("fpppp,\"SPEC95 FP,SS-2,2,false");
        let (back, dropped) = from_csv_tolerant(&text);
        assert_eq!(back, records);
        assert_eq!(dropped, 1);

        // A destroyed header yields nothing rather than garbage.
        let (back, dropped) = from_csv_tolerant("not,a,header\n");
        assert!(back.is_empty());
        assert!(dropped >= 1);

        assert_eq!(from_csv_tolerant(""), (Vec::new(), 0));
    }

    #[test]
    fn tolerant_parse_skips_interior_damage() {
        // The fabric's multi-writer appends can merge one process's torn
        // fragment with a peer's next row, leaving garbage *mid*-file.
        // Rows behind the damage must still parse — a tail-only parser
        // would hide them and the daemon would re-simulate forever.
        let records = vec![sample(), RunRecord::default()];
        let text = to_csv(&records);
        let mut lines: Vec<&str> = text.lines().collect();
        let merged = "gcc,SPEC95 I\u{fffd}gcc,torn-and-merged";
        lines.insert(2, merged); // between the two valid rows
        let damaged = format!("{}\n", lines.join("\n"));

        let (back, dropped) = from_csv_tolerant(&damaged);
        assert_eq!(back, records, "rows behind interior damage recovered");
        assert_eq!(dropped, 1);

        // The watch boundary consumes the damaged line (it is settled —
        // nothing will repair it in place) along with the intact rows.
        let (back, consumed) = from_csv_tolerant_prefix(&damaged);
        assert_eq!(back, records);
        assert_eq!(consumed, damaged.len());
    }

    #[test]
    fn tolerant_prefix_reports_the_resume_boundary() {
        let records = vec![sample(), RunRecord::default()];
        let text = to_csv(&records);
        let (back, consumed) = from_csv_tolerant_prefix(&text);
        assert_eq!(back, records);
        assert_eq!(consumed, text.len(), "complete document fully consumed");

        // A torn tail is excluded from the boundary: re-parsing the
        // suffix from `consumed` after the row completes yields exactly
        // the missing record (the --watch incremental-poll contract).
        let torn = format!("{text}fpppp,\"SPEC95");
        let (back, consumed) = from_csv_tolerant_prefix(&torn);
        assert_eq!(back, records);
        assert_eq!(consumed, text.len());
        let completed = to_csv(&[sample()]);
        let row = completed.lines().nth(1).unwrap();
        let grown = format!("{text}{row}\n");
        let suffix_doc = format!("{}\n{}", RunRecord::csv_header(), &grown[consumed..]);
        let (suffix_rows, _) = from_csv_tolerant_prefix(&suffix_doc);
        assert_eq!(suffix_rows, vec![sample()]);

        assert_eq!(from_csv_tolerant_prefix(""), (Vec::new(), 0));
        assert_eq!(from_csv_tolerant_prefix("not,a,header\n").1, 0);
    }

    #[test]
    fn tolerant_parse_survives_multiline_quoted_cells() {
        // An error message with embedded newlines spans CSV lines; the
        // tolerant parser must keep the complete record and drop only
        // the truly torn tail after it.
        let mut failed = sample();
        failed.error = "wedged\nat cycle 9,\nafter \"garbage\"".to_string();
        let mut text = to_csv(&[failed.clone()]);
        text.push_str("gcc,SPEC9"); // torn next row
        let (back, dropped) = from_csv_tolerant(&text);
        assert_eq!(back, vec![failed]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn json_missing_field_reported() {
        let err = from_json("[{\"workload\": \"gcc\"}]").unwrap_err();
        assert!(matches!(err, RecordError::BadField { .. }));
        assert!(err.to_string().contains("missing"));
    }
}
