//! # ftsim — dual use of the superscalar datapath for transient-fault
//! detection and recovery
//!
//! A from-scratch, cycle-level reproduction of Ray, Hoe & Falsafi's
//! MICRO 2001 fault-tolerant superscalar: instructions are dynamically
//! replicated into `R` data-independent threads at decode, cross-checked
//! at commit, and recovered by the pre-existing instruction-rewind
//! mechanism when a transient fault makes the copies disagree — with
//! optional majority election at `R ≥ 3`.
//!
//! This crate is the umbrella: it re-exports every subsystem, hosts the
//! [`harness`] (experiment grids, the parallel runner, serializable run
//! records), and carries the runnable examples and the cross-crate
//! integration tests. The pieces:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `ftsim-isa` | PISA-like ISA, assembler, in-order oracle emulator |
//! | [`mem`] | `ftsim-mem` | sparse memory, caches, TLBs, port arbitration |
//! | [`predict`] | `ftsim-predict` | bimodal/2-level/combined predictors, BTB, RAS |
//! | [`faults`] | `ftsim-faults` | single-event-upset injection and the coverage ledger |
//! | [`core`] | `ftsim-core` | the out-of-order pipeline with replication/check/rewind |
//! | [`model`] | `ftsim-model` | the paper's analytical performance model (§4) |
//! | [`workloads`] | `ftsim-workloads` | the 11 Table 2-calibrated synthetic benchmarks |
//! | [`stats`] | `ftsim-stats` | counters, tables, plots, CSV/JSON for the harness |
//! | [`harness`] | (this crate) | `Experiment` sweep grids, `SimBuilder` runs, `RunRecord` |
//! | — | `ftsim-daemon` | `ftsimd`, the long-running sweep daemon (persistent, resumable jobs) |
//!
//! (`ftsim-daemon` sits *above* this crate, so it is not re-exported
//! here; see its own documentation for the job-spec format and CLI.)
//!
//! # Quickstart
//!
//! Single runs go through the fluent simulator builder — configuration,
//! program, fault injection, oracle mode and limits in one validated
//! place:
//!
//! ```
//! use ftsim::core::{MachineConfig, Simulator};
//! use ftsim::isa::asm;
//!
//! let program = asm::assemble(r"
//!     addi r1, r0, 40
//!     addi r2, r0, 2
//!     add  r3, r1, r2
//!     halt
//! ").unwrap();
//!
//! // The same datapath, with and without 2-way redundant execution.
//! let plain = Simulator::builder()
//!     .config(MachineConfig::ss1())
//!     .program(&program)
//!     .run()
//!     .unwrap();
//! let dual = Simulator::builder()
//!     .config(MachineConfig::ss2())
//!     .program(&program)
//!     .run()
//!     .unwrap();
//! assert_eq!(plain.retired_instructions, dual.retired_instructions);
//! ```
//!
//! Sweeps — the paper's workload × machine-model × fault-rate
//! cross-products — are declarative [`harness::Experiment`] grids, fanned
//! out across worker threads and returned as flat, CSV/JSON-serializable
//! [`harness::RunRecord`]s:
//!
//! ```
//! use ftsim::core::MachineConfig;
//! use ftsim::harness::{to_csv, Experiment};
//! use ftsim::workloads::profile;
//!
//! let records = Experiment::grid()
//!     .workloads([profile("gcc").unwrap()])
//!     .models([MachineConfig::ss1(), MachineConfig::ss2()])
//!     .budget(2_000)
//!     .run()
//!     .unwrap();
//! let penalty = 1.0 - records[1].ipc / records[0].ipc;
//! assert!(penalty > -0.05 && penalty < 0.6);
//! assert!(to_csv(&records).lines().count() == 3); // header + 2 cells
//! ```
//!
//! See `examples/` for fault-injection demos and design-space sweeps,
//! the `ftsim-bench` crate for the experiments regenerating every table
//! and figure of the paper, and the `ftsim-daemon` crate (`ftsimd`
//! binary) for running sweeps as persistent, crash-safe jobs.

#![warn(missing_docs)]

pub mod harness;

pub use ftsim_core as core;
pub use ftsim_faults as faults;
pub use ftsim_isa as isa;
pub use ftsim_mem as mem;
pub use ftsim_model as model;
pub use ftsim_obs as obs;
pub use ftsim_predict as predict;
pub use ftsim_stats as stats;
pub use ftsim_workloads as workloads;
