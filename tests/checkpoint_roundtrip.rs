//! Snapshot/restore round-trip properties.
//!
//! The checkpoint subsystem's contract is *bit-identical resumption*: a
//! processor restored from a mid-flight snapshot must, cycle for cycle,
//! compute exactly what the uninterrupted machine computes — same retire
//! stream, same cache traffic, same committed registers and memory, same
//! final statistics. Two layers of evidence here:
//!
//! * a deterministic test that engineers a snapshot point where **every**
//!   scheduler structure is live at once — non-empty ready queue, parked
//!   memory entries, pending stores, in-flight wakeups and completion
//!   events — and verifies lock-step equality from there to `halt`;
//! * a property-style sweep (in-tree `proptest` shim) over random
//!   workloads, machine models and snapshot cycles, restoring into a
//!   *fresh* processor and requiring cycle-by-cycle agreement.

use ftsim::core::{MachineConfig, Processor, SchedulerDepths};
use ftsim::faults::FaultInjector;
use ftsim::isa::{asm, Program};
use ftsim::workloads::profile;
use proptest::prelude::*;

/// Steps both machines to `a`'s halt, requiring lock-step equality of the
/// observable per-cycle record (cycle count, retirement, fetch and D-cache
/// streams) and full architectural equality at the end.
fn assert_lockstep_to_halt(a: &mut Processor, b: &mut Processor) {
    let mut guard = 0u64;
    while !a.halted() {
        a.cycle();
        b.cycle();
        let (sa, sb) = (a.stats_snapshot(), b.stats_snapshot());
        assert_eq!(a.now(), b.now(), "cycle clocks diverged");
        assert_eq!(
            sa.retired_instructions,
            sb.retired_instructions,
            "retire streams diverged at cycle {}",
            a.now()
        );
        assert_eq!(
            sa.fetched,
            sb.fetched,
            "fetch streams diverged at cycle {}",
            a.now()
        );
        assert_eq!(
            sa.dl1.accesses,
            sb.dl1.accesses,
            "D-cache traffic diverged at cycle {}",
            a.now()
        );
        assert_eq!(
            a.scheduler_depths(),
            b.scheduler_depths(),
            "scheduler occupancy diverged at cycle {}",
            a.now()
        );
        guard += 1;
        assert!(guard < 1_000_000, "run did not halt");
    }
    assert!(
        b.halted(),
        "restored machine did not halt with the original"
    );
    let (sa, sb) = (a.stats_snapshot(), b.stats_snapshot());
    assert_eq!(sa.cycles, sb.cycles);
    assert_eq!(sa.retired_entries, sb.retired_entries);
    assert_eq!(sa.branch_mispredicts, sb.branch_mispredicts);
    assert_eq!(sa.il1.hits, sb.il1.hits);
    assert_eq!(sa.l2.accesses, sb.l2.accesses);
    assert!(a.regs().diff(b.regs()).is_empty(), "registers diverged");
    assert!(a.mem().diff(b.mem(), 4).is_empty(), "memory diverged");
}

/// A kernel that keeps every scheduler structure busy at once: port-
/// saturating load bursts (parked memory), stores fed by long-latency
/// multiplies (pending stores + in-flight wakeups), and more independent
/// ALU work than the machine can issue (ready backlog).
fn busy_kernel() -> Program {
    asm::assemble(
        r"
            li   r10, 0x100000
            addi r1, r0, 24
            sd   r1, 0(r10)
            sd   r1, 64(r10)
            sd   r1, 128(r10)
        loop:
            mul  r2, r1, r1
            mul  r3, r2, r1
            sd   r2, 0(r10)
            sd   r3, 8(r10)
            ld   r4, 0(r10)
            ld   r5, 64(r10)
            ld   r6, 128(r10)
            add  r7, r4, r5
            add  r8, r6, r1
            add  r9, r7, r8
            addi r10, r10, 16
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        ",
    )
    .expect("kernel assembles")
}

#[test]
fn snapshot_with_every_structure_live_restores_bit_identically() {
    let program = busy_kernel();
    let mut a = Processor::new(MachineConfig::ss2(), &program, FaultInjector::none());

    // Find a boundary where all five structures hold in-flight state.
    let mut found: Option<SchedulerDepths> = None;
    for _ in 0..2_000 {
        a.cycle();
        let d = a.scheduler_depths();
        if d.waiters > 0 && d.ready > 0 && d.parked_mem > 0 && d.pending_stores > 0 && d.events > 0
        {
            found = Some(d);
            break;
        }
    }
    let depths = found.expect(
        "kernel must reach a cycle with ready + parked + pending-store + wakeup state at once",
    );
    assert!(!a.halted());

    let cp = a.snapshot();
    assert_eq!(cp.cycle(), a.now());
    let mut b = Processor::new(MachineConfig::ss2(), &program, FaultInjector::none());
    b.restore(&cp);
    assert_eq!(
        b.scheduler_depths(),
        depths,
        "restore must reproduce the scheduler occupancy exactly"
    );
    assert_lockstep_to_halt(&mut a, &mut b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_midflight_snapshots_restore_bit_identically(
        bench in prop::sample::select(vec!["gcc", "fpppp", "equake", "go", "swim"]),
        model in 0usize..3,
        warmup in 50u64..4_000,
    ) {
        let config = [MachineConfig::ss1(), MachineConfig::ss2(), MachineConfig::ss3_majority()]
            [model].clone();
        let program = profile(bench).expect("profile exists").program_for_instructions(3_000);
        let mut a = Processor::new(config.clone(), &program, FaultInjector::none());
        for _ in 0..warmup {
            if a.halted() {
                break;
            }
            a.cycle();
        }
        prop_assume!(!a.halted()); // a snapshot of a finished run proves nothing

        let cp = a.snapshot();
        prop_assert_eq!(cp.draws(), a.stats_snapshot().dispatched_entries);
        let mut b = Processor::new(config, &program, FaultInjector::none());
        b.restore(&cp);
        assert_lockstep_to_halt(&mut a, &mut b);
    }
}
