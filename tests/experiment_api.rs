//! The redesigned experiment surface: builder misuse is reported (not
//! panicked), run records round-trip through CSV and JSON, and a parallel
//! [`Experiment::grid`] run is byte-identical to a sequential one.

use ftsim::core::{BuildError, ConfigError, MachineConfig, OracleMode, SimError, Simulator};
use ftsim::harness::{from_csv, from_json, to_csv, to_json, Experiment, ExperimentError};
use ftsim::isa::asm;
use ftsim::workloads::{profile, spec_profiles};

#[test]
fn builder_reports_missing_pieces() {
    assert_eq!(
        Simulator::builder().build().unwrap_err(),
        BuildError::MissingConfig
    );
    assert_eq!(
        Simulator::builder()
            .config(MachineConfig::ss1())
            .build()
            .unwrap_err(),
        BuildError::MissingProgram
    );
    // The one-step run() surfaces the same misuse as a SimError.
    assert_eq!(
        Simulator::builder().run().unwrap_err(),
        SimError::Invalid(BuildError::MissingConfig)
    );
}

#[test]
fn builder_rejects_invalid_machines() {
    let program = asm::assemble("addi r1, r0, 1\nhalt\n").unwrap();

    let mut narrow = MachineConfig::ss3();
    narrow.commit_width = 2;
    let err = Simulator::builder()
        .config(narrow)
        .program(&program)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::Config(ConfigError::GroupExceedsCommit { width: 2, r: 3 })
    );

    let mut no_alu = MachineConfig::ss1();
    no_alu.fu.int_alu = 0;
    let err = Simulator::builder()
        .config(no_alu)
        .program(&program)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::Config(ConfigError::ZeroFuCount { unit: "int_alu" })
    );
}

#[test]
fn experiment_rejects_nonsense_grids() {
    // threshold > r is caught before any cell simulates.
    let bad = MachineConfig::ss2().with_redundancy(ftsim::core::RedundancyConfig {
        r: 2,
        majority: false,
        threshold: 3,
    });
    let err = Experiment::grid()
        .workloads([profile("gcc").unwrap()])
        .models([bad])
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        ExperimentError::InvalidModel {
            model: "SS-2".to_string(),
            source: ConfigError::ThresholdExceedsR { threshold: 3, r: 2 },
        }
    );
    assert!(err.to_string().contains("threshold 3"));
}

#[test]
fn figure5_grid_runs_through_the_new_api() {
    // The Figure 5 shape — all 11 workloads x the paper's three machine
    // models — through Experiment::grid() on multiple threads, with both
    // exports exercised (budget kept small: this is an API test, the
    // full-budget run lives in the fig5 bench target).
    let grid = || {
        Experiment::grid()
            .workloads(spec_profiles())
            .models([
                MachineConfig::ss1(),
                MachineConfig::static2(),
                MachineConfig::ss2(),
            ])
            .budget(2_000)
    };
    assert_eq!(grid().cells(), 33);
    let records = grid().threads(4).run().unwrap();
    assert_eq!(records.len(), 33);
    assert!(records.iter().all(|r| r.ok() && r.ipc > 0.0));
    // Every (workload, model) pair appears exactly once.
    for p in spec_profiles() {
        for model in ["SS-1", "Static-2", "SS-2"] {
            assert_eq!(
                records
                    .iter()
                    .filter(|r| r.workload == p.name && r.model == model)
                    .count(),
                1,
                "{} on {model}",
                p.name
            );
        }
    }
    // Both serializations invert exactly.
    assert_eq!(from_csv(&to_csv(&records)).unwrap(), records);
    assert_eq!(from_json(&to_json(&records)).unwrap(), records);
}

#[test]
fn parallel_grid_is_byte_identical_to_sequential() {
    let grid = |threads: usize| {
        Experiment::grid()
            .workloads([profile("gcc").unwrap(), profile("equake").unwrap()])
            .models([MachineConfig::ss1(), MachineConfig::ss2()])
            .fault_rates([0.0, 2_000.0])
            .budget(2_000)
            .seeds([1, 2])
            .threads(threads)
            .run()
            .unwrap()
    };
    let sequential = grid(1);
    let parallel = grid(8);
    assert_eq!(sequential.len(), 16);
    assert_eq!(sequential, parallel);
    // Byte-identical, not merely equal: the serialized forms match too.
    assert_eq!(to_csv(&sequential), to_csv(&parallel));
    assert_eq!(to_json(&sequential), to_json(&parallel));
}

#[test]
fn record_round_trip_preserves_fault_outcomes() {
    // A fault-injecting cell produces nontrivial fate counts and float
    // statistics; they must survive CSV and JSON round trips exactly.
    let records = Experiment::grid()
        .workloads([profile("fpppp").unwrap()])
        .models([MachineConfig::ss2(), MachineConfig::ss3_majority()])
        .fault_rates([5_000.0])
        .budget(3_000)
        .seeds([9])
        .oracle(OracleMode::Final)
        .run()
        .unwrap();
    assert!(records.iter().any(|r| r.faults_injected > 0));
    assert!(records.iter().all(|r| r.faults_escaped == 0));
    let via_csv = from_csv(&to_csv(&records)).unwrap();
    let via_json = from_json(&to_json(&records)).unwrap();
    assert_eq!(via_csv, records);
    assert_eq!(via_json, records);
    // Spot-check a float field's bit-exactness through both paths.
    for (orig, (a, b)) in records.iter().zip(via_csv.iter().zip(via_json.iter())) {
        assert_eq!(orig.ipc.to_bits(), a.ipc.to_bits());
        assert_eq!(
            orig.mean_rewind_penalty.to_bits(),
            b.mean_rewind_penalty.to_bits()
        );
    }
}

#[test]
fn failed_cells_become_error_records_not_aborts() {
    // An R=1 machine at an absurd fault rate with a tight cycle ceiling:
    // whether each seed survives is up to the dice, but the sweep itself
    // must always complete and account for every cell.
    let records = Experiment::grid()
        .workloads([profile("go").unwrap()])
        .models([MachineConfig::ss1()])
        .fault_rates([50_000.0])
        .budget(2_000)
        .seeds([1, 2, 3, 4])
        .oracle(OracleMode::Final)
        .run()
        .unwrap();
    assert_eq!(records.len(), 4);
    for r in &records {
        assert_eq!(r.ok(), r.error.is_empty());
    }
    // Error records still round-trip.
    assert_eq!(from_csv(&to_csv(&records)).unwrap(), records);
    assert_eq!(from_json(&to_json(&records)).unwrap(), records);
}
