//! End-to-end fault-tolerance guarantees over the synthetic benchmarks:
//! with R ≥ 2, injected transient faults never corrupt committed state
//! (unless every committing copy is corrupted identically — which the
//! ledger must then report as an escape).

use ftsim::core::{MachineConfig, OracleMode, Simulator};
use ftsim::faults::{per_million, FaultInjector, FaultPlan, InjectionPoint};
use ftsim::workloads::{fibonacci, spec_profiles};

#[test]
fn every_benchmark_recovers_from_faults_r2() {
    for (i, p) in spec_profiles().into_iter().enumerate() {
        let program = p.program(4);
        let r = Simulator::builder()
            .config(MachineConfig::ss2())
            .program(&program)
            .injector(FaultInjector::random(per_million(3_000.0), 1000 + i as u64))
            .oracle(OracleMode::Final)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert_eq!(r.faults.escaped, 0, "{}: {}", p.name, r.faults);
        assert_eq!(r.faults.pending, 0, "{}: {}", p.name, r.faults);
    }
}

#[test]
fn majority_election_preserves_state_across_benchmarks() {
    for (i, p) in spec_profiles().into_iter().step_by(3).enumerate() {
        let program = p.program(4);
        let r = Simulator::builder()
            .config(MachineConfig::ss3_majority())
            .program(&program)
            .injector(FaultInjector::random(per_million(3_000.0), 2000 + i as u64))
            .oracle(OracleMode::Final)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert_eq!(r.faults.escaped, 0, "{}: {}", p.name, r.faults);
    }
}

#[test]
fn detection_triggers_rewind_and_is_fully_accounted() {
    let p = &spec_profiles()[6]; // equake
    let program = p.program(6);
    let r = Simulator::builder()
        .config(MachineConfig::ss2())
        .program(&program)
        .injector(FaultInjector::random(per_million(5_000.0), 77))
        .oracle(OracleMode::Final)
        .run()
        .unwrap();
    let f = r.faults;
    assert!(f.injected > 0, "storm must inject something");
    assert_eq!(
        f.injected,
        f.detected + f.outvoted + f.masked + f.squashed_wrong_path + f.squashed_by_rewind,
        "ledger must account every fault: {f}"
    );
    assert_eq!(
        r.stats.fault_rewinds, f.detected,
        "one rewind per detection"
    );
    assert!(f.coverage() >= 1.0 - 1e-12);
}

#[test]
fn planned_faults_on_every_injection_point_recover() {
    // One run per injection point, planted on several instruction slots of
    // a simple halting kernel; none may corrupt committed state at R=2.
    use InjectionPoint::*;
    let program = fibonacci(40);
    for point in [
        OperandA,
        OperandB,
        Result,
        EffAddr,
        StoreData,
        BranchDirection,
        BranchTarget,
        RobWait,
    ] {
        let mut plan = FaultPlan::new();
        for g in 5..30 {
            plan.add(g, 1, point, (g % 60) as u8);
        }
        let r = Simulator::builder()
            .config(MachineConfig::ss2())
            .program(&program)
            .injector(FaultInjector::from_plan(plan))
            .oracle(OracleMode::Final)
            .run()
            .unwrap_or_else(|e| panic!("{point:?}: {e}"));
        assert_eq!(r.faults.escaped, 0, "{point:?}: {}", r.faults);
    }
}

#[test]
fn fault_free_redundant_run_detects_nothing() {
    let p = &spec_profiles()[0];
    let program = p.program(3);
    let r = Simulator::builder()
        .config(MachineConfig::ss2())
        .program(&program)
        .oracle(OracleMode::Final)
        .run()
        .unwrap();
    assert_eq!(r.stats.fault_rewinds, 0);
    assert_eq!(r.stats.pc_check_rewinds, 0);
    assert_eq!(r.faults.injected, 0);
}

#[test]
fn throughput_immune_to_realistic_fault_rates() {
    // Paper abstract: "the overall throughput remains unaffected by even a
    // high frequency of faults because of the low cost of rewind-based
    // recovery." Realistic SEU rates are < 1 fault per *hours*; even at
    // 100 faults per million instructions the slowdown must be tiny.
    let p = &spec_profiles()[8]; // fpppp
    let program = p.program(8);
    let clean = Simulator::builder()
        .config(MachineConfig::ss2())
        .program(&program)
        .oracle(OracleMode::Off)
        .run()
        .unwrap();
    let noisy = Simulator::builder()
        .config(MachineConfig::ss2())
        .program(&program)
        .injector(FaultInjector::random(per_million(100.0), 3))
        .oracle(OracleMode::Final)
        .run()
        .unwrap();
    let slowdown = noisy.cycles as f64 / clean.cycles as f64;
    assert!(slowdown < 1.03, "slowdown {slowdown:.4} at 100 faults/M");
}
