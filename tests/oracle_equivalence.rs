//! The central invariant: the out-of-order simulator's committed
//! architectural state is bit-exact against the in-order oracle — on every
//! machine model, for every synthetic benchmark and kernel.

use ftsim::core::{MachineConfig, OracleMode, SimResult, Simulator};
use ftsim::isa::Program;
use ftsim::workloads::{dot_product, fibonacci, pointer_chase, spec_profiles};

fn run_checked(config: MachineConfig, program: &Program, name: &str) -> SimResult {
    Simulator::builder()
        .config(config)
        .program(program)
        .oracle(OracleMode::Final)
        .run()
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn all_benchmarks_match_oracle_on_all_models() {
    for p in spec_profiles() {
        let program = p.program(4); // ~1200 dynamic instructions, halts
        for config in [
            MachineConfig::ss1(),
            MachineConfig::ss2(),
            MachineConfig::static2(),
        ] {
            let name = format!("{} on {}", p.name, config.name);
            let r = run_checked(config, &program, &name);
            assert!(r.halted, "{name} did not halt");
        }
    }
}

#[test]
fn r3_models_match_oracle() {
    for p in spec_profiles().into_iter().take(4) {
        let program = p.program(3);
        for config in [MachineConfig::ss3(), MachineConfig::ss3_majority()] {
            let name = format!("{} on {}", p.name, config.name);
            run_checked(config, &program, &name);
        }
    }
}

#[test]
fn kernels_match_oracle_on_every_model() {
    let kernels = [
        ("dot_product", dot_product(48)),
        ("fibonacci", fibonacci(60)),
        ("pointer_chase", pointer_chase(64, 500)),
    ];
    for (kname, program) in &kernels {
        for config in [
            MachineConfig::ss1(),
            MachineConfig::ss2(),
            MachineConfig::ss3_majority(),
            MachineConfig::static2(),
        ] {
            let name = format!("{kname} on {}", config.name);
            run_checked(config, program, &name);
        }
    }
}

#[test]
fn equivalence_holds_under_resource_scaling() {
    use ftsim::core::Scale;
    let p = &spec_profiles()[4]; // ijpeg
    let program = p.program(3);
    for scale in [Scale::Half, Scale::Two, Scale::Infinite] {
        for config in [
            MachineConfig::ss1().with_fu_scale(scale),
            MachineConfig::ss1().with_ruu_scale(scale),
            MachineConfig::ss2().with_ruu_scale(scale),
        ] {
            run_checked(config, &program, &format!("scale {scale:?}"));
        }
    }
}

#[test]
fn retired_counts_are_model_independent() {
    let p = &spec_profiles()[2]; // go
    let program = p.program(3);
    let mut counts = Vec::new();
    for config in [
        MachineConfig::ss1(),
        MachineConfig::ss2(),
        MachineConfig::ss3(),
        MachineConfig::static2(),
    ] {
        let name = config.name.clone();
        let r = run_checked(config, &program, &name);
        counts.push(r.retired_instructions);
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "architectural instruction counts diverged: {counts:?}"
    );
}
