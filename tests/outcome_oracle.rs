//! Oracle cross-check of the outcome taxonomy: for deterministic
//! fault plans at every injection point, the analysis layer's SDC/masked
//! classification (digest vs. fault-free baseline) must agree with the
//! `oracle_equivalence`-style golden-output comparison — replaying the
//! in-order emulator for the same number of retired instructions and
//! diffing committed registers and memory.
//!
//! The runs use `SS-1` (no redundancy): the one design where injected
//! faults genuinely escape to committed state, so both classifiers have
//! real corruption to find.

use ftsim::core::{MachineConfig, Processor};
use ftsim::faults::{FaultInjector, FaultPlan, InjectionPoint};
use ftsim::harness::RunRecord;
use ftsim::isa::{Emulator, Program};
use ftsim::workloads::profile;
use ftsim_analysis::{classify, BaselineIndex, CellOutcome};

struct Run {
    halted: bool,
    retired: u64,
    digest: u64,
    record: RunRecord,
    /// Golden-output comparison against the in-order oracle: `Some(true)`
    /// when committed state diverged, `None` when the run hung (nothing
    /// to compare).
    oracle_mismatch: Option<bool>,
}

fn run(program: &Program, config: MachineConfig, injector: FaultInjector, label: &str) -> Run {
    let model = config.name.clone();
    let r = config.redundancy.r;
    let threshold = config.redundancy.threshold;
    let mut proc = Processor::new(config, program, injector);
    for _ in 0..300_000 {
        proc.cycle();
        if proc.halted() {
            break;
        }
    }
    let stats = proc.stats_snapshot();
    let retired = stats.retired_instructions;
    let digest = proc.state_digest();

    let oracle_mismatch = proc.halted().then(|| {
        let mut emu = Emulator::new(program);
        let executed = emu.run_steps(retired).expect("oracle replays the program");
        executed != retired
            || emu.halted() != proc.halted()
            || !emu.regs().diff(proc.regs()).is_empty()
            || !emu.mem().diff(proc.mem(), 4).is_empty()
    });

    let record = RunRecord {
        workload: "gcc".to_string(),
        suite: "SPEC95 INT".to_string(),
        model,
        r,
        threshold,
        fault_rate_pm: if stats.faults.injected > 0 { 1.0 } else { 0.0 },
        site_mix: label.to_string(),
        budget: 100_000,
        error: if proc.halted() {
            String::new()
        } else {
            "commit watchdog fired (machine hung)".to_string()
        },
        halted: proc.halted(),
        cycles: stats.cycles,
        retired_instructions: retired,
        state_digest: digest,
        faults_injected: stats.faults.injected,
        faults_detected: stats.faults.detected,
        faults_outvoted: stats.faults.outvoted,
        faults_masked: stats.faults.masked,
        faults_squashed_wrong_path: stats.faults.squashed_wrong_path,
        faults_squashed_by_rewind: stats.faults.squashed_by_rewind,
        faults_escaped: stats.faults.escaped,
        faults_pending: stats.faults.pending,
        detect_events: stats.fault_latency.events,
        detect_latency_cycles: stats.fault_latency.cycles_sum,
        detect_latency_insts: stats.fault_latency.instructions_sum,
        detect_latency_max: stats.fault_latency.cycles_max,
        site_fates: stats.fault_sites.to_compact(),
        ..RunRecord::default()
    };
    Run {
        halted: proc.halted(),
        retired,
        digest,
        record,
        oracle_mismatch,
    }
}

/// Schedules the same corruption at a window of dispatch indices:
/// whichever of them dispatches an instruction the site applies to fires
/// (each event at most once), so every site gets real injections without
/// hand-picking victim instructions.
fn plan_for(point: InjectionPoint) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for seq in 120..180 {
        plan.add(seq, 0, point, 4);
    }
    plan
}

#[test]
fn classification_agrees_with_golden_output_comparison_per_site() {
    let program = profile("gcc").expect("profile exists").program(3);
    let mut records = Vec::new();
    let mut baselines_by_model = Vec::new();
    let mut runs = Vec::new();
    // SS-1 is where faults genuinely escape; SS-2's cross-check catches
    // them, giving the benign side of the taxonomy on the same plans.
    for config in [MachineConfig::ss1(), MachineConfig::ss2()] {
        let baseline = run(&program, config.clone(), FaultInjector::none(), "baseline");
        assert!(
            baseline.halted,
            "{}: fault-free run must complete",
            config.name
        );
        assert_eq!(baseline.oracle_mismatch, Some(false));
        records.push(baseline.record.clone());
        for &point in InjectionPoint::ALL {
            let r = run(
                &program,
                config.clone(),
                FaultInjector::from_plan(plan_for(point)),
                point.code(),
            );
            records.push(r.record.clone());
            runs.push((config.name.clone(), point, r));
        }
        baselines_by_model.push(baseline);
    }

    let baselines = BaselineIndex::build(&records);
    for b in &baselines_by_model {
        assert_eq!(classify(&b.record, &baselines), CellOutcome::FaultFree);
    }

    let mut sdc_sites = Vec::new();
    let mut benign_sites = Vec::new();
    for (model, point, r) in &runs {
        let outcome = classify(&r.record, &baselines);
        let Some(mismatch) = r.oracle_mismatch else {
            // The machine hung (e.g. a corrupted branch target wedged
            // fetch at R = 1): there is no final state to compare, and
            // the taxonomy must say exactly that.
            assert_eq!(outcome, CellOutcome::Hang, "{model}/{point:?}");
            continue;
        };
        // The heart of the cross-check: digest-vs-baseline and the
        // emulator golden-output diff must render the same verdict.
        assert_eq!(
            outcome == CellOutcome::Sdc,
            mismatch,
            "{model}/{point:?}: classifier says {outcome:?} but oracle mismatch = {mismatch} \
             (retired {}, digest {:#x})",
            r.retired,
            r.digest,
        );
        if mismatch {
            sdc_sites.push((model.clone(), *point));
        } else {
            benign_sites.push((model.clone(), *point));
        }
        if !mismatch {
            assert!(matches!(
                outcome,
                CellOutcome::Masked | CellOutcome::Detected | CellOutcome::FaultFree
            ));
        }
        if model == "SS-2" {
            assert_ne!(
                outcome,
                CellOutcome::Sdc,
                "SS-2's sphere of replication must not leak an SDC at {point:?}"
            );
        }
    }
    // The corpus must exercise both verdicts, or the agreement above
    // proves nothing.
    assert!(
        !sdc_sites.is_empty(),
        "at R = 1 some site must produce a real SDC"
    );
    assert!(
        !benign_sites.is_empty(),
        "the protected design must contribute benign verdicts"
    );
}
