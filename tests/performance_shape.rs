//! Fast versions of the paper's quantitative claims — the same checks the
//! full benches make, on reduced budgets, so `cargo test` guards the
//! reproduction's shape.

use ftsim::core::{MachineConfig, OracleMode, Simulator};
use ftsim::model::{
    crossover_frequency, ipc_with_faults, ipc_with_faults_majority, steady_state_ipc,
};
use ftsim::workloads::{profile, spec_profiles};

const BUDGET: u64 = 15_000;

fn ipc(p: &ftsim::workloads::WorkloadProfile, config: MachineConfig) -> f64 {
    let program = p.program_for_instructions(BUDGET);
    Simulator::builder()
        .config(config)
        .program(&program)
        .oracle(OracleMode::Off)
        .budget(BUDGET)
        .run()
        .unwrap()
        .ipc
}

#[test]
fn figure5_penalty_envelope() {
    let mut penalties = Vec::new();
    for p in spec_profiles() {
        let r1 = ipc(&p, MachineConfig::ss1());
        let r2 = ipc(&p, MachineConfig::ss2());
        penalties.push((p.name, 1.0 - r2 / r1));
    }
    let avg = penalties.iter().map(|(_, x)| x).sum::<f64>() / penalties.len() as f64;
    // Paper: 2%..45% penalty, ~30-32% average.
    assert!(
        (0.15..=0.45).contains(&avg),
        "average penalty {avg:.3}: {penalties:?}"
    );
    for (name, pen) in &penalties {
        assert!(
            (-0.05..=0.55).contains(pen),
            "{name} penalty {pen:.3} outside the paper envelope"
        );
    }
    // ammp/go/vpr suffer least (paper §5.2).
    let of = |n: &str| penalties.iter().find(|(m, _)| *m == n).unwrap().1;
    let low = (of("ammp") + of("go") + of("vpr")) / 3.0;
    assert!(low < avg / 2.0, "low trio {low:.3} vs avg {avg:.3}");
}

#[test]
fn figure5_static2_wins_on_fp_benchmarks() {
    for name in ["fpppp", "art"] {
        let p = profile(name).unwrap();
        let st = ipc(&p, MachineConfig::static2());
        let ss2 = ipc(&p, MachineConfig::ss2());
        assert!(
            st > ss2 * 1.05,
            "{name}: Static-2 {st:.3} should clearly beat SS-2 {ss2:.3}"
        );
    }
}

#[test]
fn ss2_comparable_to_static2_overall() {
    // Paper: "Overall, the 2-way dynamic redundant superscalar performs
    // comparably to the static two-pipeline processor."
    let mut ratio_sum = 0.0;
    let n = spec_profiles().len() as f64;
    for p in spec_profiles() {
        ratio_sum += ipc(&p, MachineConfig::ss2()) / ipc(&p, MachineConfig::static2());
    }
    let mean_ratio = ratio_sum / n;
    assert!(
        (0.7..=1.25).contains(&mean_ratio),
        "SS-2/Static-2 mean IPC ratio {mean_ratio:.3} not comparable"
    );
}

#[test]
fn analytical_model_brackets_simulation_for_saturated_code() {
    // For a resource-limited benchmark the steady-state model min(IPC1, B/R)
    // should predict the R=2 IPC within a modest error once B is taken as
    // the measured saturation point.
    let p = profile("ijpeg").unwrap();
    let r1 = ipc(&p, MachineConfig::ss1());
    let r2 = ipc(&p, MachineConfig::ss2());
    let b = r1; // saturated: IPC1 == B
    let predicted = steady_state_ipc(r1, b, 2);
    let err = (predicted - r2).abs() / r2;
    assert!(
        err < 0.25,
        "model {predicted:.3} vs simulated {r2:.3} ({err:.2} rel err)"
    );
}

#[test]
fn figure3_figure4_claims() {
    // Flat until 1/f within two orders of W.
    let flat = ipc_with_faults(0.5, 2, 1e-5, 20.0);
    assert!(flat > 0.495);
    // Figure 4: W=2000 at f=1e-6 still flat.
    let flat2000 = ipc_with_faults(0.5, 2, 1e-6, 2000.0);
    assert!(flat2000 > 0.49);
    // Majority outlasts rewind at R=3.
    assert!(
        ipc_with_faults_majority(1.0 / 3.0, 3, 2, 1e-3, 20.0)
            > ipc_with_faults(1.0 / 3.0, 3, 1e-3, 20.0)
    );
    // Crossover far beyond intended rates.
    let x = crossover_frequency(0.5, 1.0 / 3.0, 20.0).unwrap();
    assert!(x > 1e-3, "crossover {x:.2e} too low");
}

#[test]
fn deterministic_across_repeated_runs() {
    let p = profile("vortex").unwrap();
    let a = ipc(&p, MachineConfig::ss2());
    let b = ipc(&p, MachineConfig::ss2());
    assert_eq!(a, b);
}
