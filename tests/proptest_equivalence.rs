//! Property-based tests: for *arbitrary* generated programs, the
//! out-of-order pipeline's committed state equals the in-order oracle's —
//! with and without redundancy, and under fault injection at R = 2.

use ftsim::core::{MachineConfig, OracleMode, RunLimits, Simulator};
use ftsim::faults::FaultInjector;
use ftsim::isa::{Inst, IntReg, Opcode, Program, ProgramBuilder, DATA_BASE};
use proptest::prelude::*;

/// One template step of a random (but always-terminating) program.
/// Register fields are drawn from a small window so dependences are dense;
/// branches only skip forward a bounded distance, so control flow cannot
/// loop. Memory stays inside a 4 KB scratch region.
#[derive(Debug, Clone)]
enum Step {
    Alu(Opcode, u8, u8, u8),
    AluImm(Opcode, u8, u8, i32),
    Load(Opcode, u8, u16),
    Store(Opcode, u8, u16),
    FpOp(Opcode, u8, u8, u8),
    BranchSkip(Opcode, u8, u8, u8),
    Cvt(bool, u8, u8),
}

fn alu_ops() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Nor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
    ])
}

fn alu_imm_ops() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slti,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
    ])
}

fn fp_ops() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Fadd,
        Opcode::Fsub,
        Opcode::Fmul,
        Opcode::Fdiv,
        Opcode::Fmin,
        Opcode::Fmax,
    ])
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (alu_ops(), 1u8..10, 1u8..10, 1u8..10).prop_map(|(o, d, a, b)| Step::Alu(o, d, a, b)),
        3 => (alu_imm_ops(), 1u8..10, 1u8..10, -64i32..64).prop_map(|(o, d, a, i)| Step::AluImm(o, d, a, i)),
        2 => (prop::sample::select(vec![Opcode::Ld, Opcode::Lw, Opcode::Lb]), 1u8..10, 0u16..512)
            .prop_map(|(o, d, off)| Step::Load(o, d, off)),
        2 => (prop::sample::select(vec![Opcode::Sd, Opcode::Sw, Opcode::Sb]), 1u8..10, 0u16..512)
            .prop_map(|(o, s, off)| Step::Store(o, s, off)),
        2 => (fp_ops(), 1u8..6, 1u8..6, 1u8..6).prop_map(|(o, d, a, b)| Step::FpOp(o, d, a, b)),
        2 => (prop::sample::select(vec![Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge]),
              1u8..10, 1u8..10, 1u8..4)
            .prop_map(|(o, a, b, skip)| Step::BranchSkip(o, a, b, skip)),
        1 => (any::<bool>(), 1u8..6, 1u8..6).prop_map(|(to_fp, d, a)| Step::Cvt(to_fp, d, a)),
    ]
}

/// Builds a runnable program from templates: a seeded prologue, the steps
/// (with forward-only branches), and a store-everything epilogue.
fn build_program(steps: &[Step]) -> Program {
    let mut b = ProgramBuilder::new();
    let base = IntReg::new(20);
    b.li(base, DATA_BASE as i64);
    for r in 1u8..10 {
        b.li(IntReg::new(r), (r as i64) * 0x12345 + 7);
    }
    // Seed FP registers from deterministic data.
    b.data_f64(DATA_BASE + 3072, &[1.5, -2.25, 3.75, 0.5, 123.0, -0.125]);
    for f in 0u8..6 {
        b.lfd(ftsim::isa::FpReg::new(f), base, 3072 + i32::from(f) * 8);
    }

    let mut label = 0usize;
    let mut pending: Vec<(usize, String)> = Vec::new(); // (end index, label)
    for (i, s) in steps.iter().enumerate() {
        // Close any branch scopes that end here.
        pending.retain(|(end, name)| {
            if *end <= i {
                b.label(name);
                false
            } else {
                true
            }
        });
        match s {
            Step::Alu(o, d, a, c) => {
                b.inst(Inst::new(*o, *d, *a, *c, 0));
            }
            Step::AluImm(o, d, a, imm) => {
                b.inst(Inst::new(*o, *d, *a, 0, *imm));
            }
            Step::Load(o, d, off) => {
                b.inst(Inst::new(*o, *d, 20, 0, i32::from(*off)));
            }
            Step::Store(o, s, off) => {
                b.inst(Inst::new(*o, 0, 20, *s, i32::from(*off)));
            }
            Step::FpOp(o, d, a, c) => {
                b.inst(Inst::new(*o, *d, *a, *c, 0));
            }
            Step::BranchSkip(o, a, c, skip) => {
                let name = format!("skip{label}");
                label += 1;
                match o {
                    Opcode::Beq => b.beq(IntReg::new(*a), IntReg::new(*c), &name),
                    Opcode::Bne => b.bne(IntReg::new(*a), IntReg::new(*c), &name),
                    Opcode::Blt => b.blt(IntReg::new(*a), IntReg::new(*c), &name),
                    _ => b.bge(IntReg::new(*a), IntReg::new(*c), &name),
                };
                pending.push((i + 1 + *skip as usize, name));
            }
            Step::Cvt(to_fp, d, a) => {
                if *to_fp {
                    b.cvtif(ftsim::isa::FpReg::new(*d), IntReg::new(*a));
                } else {
                    b.cvtfi(IntReg::new(*d), ftsim::isa::FpReg::new(*a));
                }
            }
        }
    }
    // Close remaining scopes past the last instruction.
    for (_, name) in pending {
        b.label(&name);
    }
    // Epilogue: spill every live register so the oracle compares them all.
    for r in 1u8..10 {
        b.sd(IntReg::new(r), base, 1024 + i32::from(r) * 8);
    }
    for f in 0u8..6 {
        b.sfd(ftsim::isa::FpReg::new(f), base, 2048 + i32::from(f) * 8);
    }
    b.halt();
    b.build().expect("generated labels are unique and defined")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_match_oracle_on_every_model(steps in prop::collection::vec(step(), 1..120)) {
        let program = build_program(&steps);
        for config in [MachineConfig::ss1(), MachineConfig::ss2(), MachineConfig::ss3_majority()] {
            let name = config.name.clone();
            let r = Simulator::builder()
                .config(config)
                .program(&program)
                .oracle(OracleMode::Final)
                .limits(RunLimits {
                    max_cycles: 2_000_000,
                    ..RunLimits::default()
                })
                .run();
            prop_assert!(r.is_ok(), "{}: {:?}", name, r.err());
        }
    }

    #[test]
    fn random_programs_survive_fault_storms_at_r2(
        steps in prop::collection::vec(step(), 1..100),
        seed in 0u64..1_000,
    ) {
        let program = build_program(&steps);
        let r = Simulator::builder()
            .config(MachineConfig::ss2())
            .program(&program)
            .injector(FaultInjector::random(1e-3, seed))
            .oracle(OracleMode::Final)
            .limits(RunLimits {
                max_cycles: 2_000_000,
                ..RunLimits::default()
            })
            .run();
        prop_assert!(r.is_ok(), "{:?}", r.err());
        let r = r.unwrap();
        prop_assert_eq!(r.faults.escaped, 0);
    }

    #[test]
    fn random_programs_deterministic(steps in prop::collection::vec(step(), 1..60)) {
        let program = build_program(&steps);
        let run = || {
            Simulator::builder()
                .config(MachineConfig::ss2())
                .program(&program)
                .oracle(OracleMode::Off)
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.retired_instructions, b.retired_instructions);
    }
}
