//! Scheduler-equivalence golden test.
//!
//! The event-driven scheduler (wakeup wait-lists, incremental ready queue,
//! pending-store list) must be *observationally identical* to the seed's
//! scan-based scheduler: same cycle counts, same fault fates, same
//! records, byte for byte. This test runs the workload tour plus
//! randomized fault plans through the experiment grid and compares the
//! CSV serialization of every record against a golden file generated
//! with the scan-based scheduler.
//!
//! Regenerate the golden file (only when an *intentional* semantic change
//! lands, never to paper over a scheduler divergence) with:
//!
//! ```text
//! FTSIM_BLESS=1 cargo test --test scheduler_equivalence
//! ```

use ftsim::harness::{to_csv, Experiment, RunRecord};
use ftsim_core::{MachineConfig, OracleMode};
use ftsim_faults::SiteMix;
use ftsim_workloads::spec_profiles;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scheduler_records.csv")
}

/// The tour: every calibrated benchmark profile on the paper's three
/// redundancy designs, fault-free and at a moderate random fault rate,
/// with the oracle checking final state.
fn tour_records() -> Vec<RunRecord> {
    Experiment::grid()
        .workloads(spec_profiles())
        .models([
            MachineConfig::ss1(),
            MachineConfig::ss2(),
            MachineConfig::ss3_majority(),
        ])
        .fault_rates([0.0, 2_000.0])
        .budget(2_000)
        .seeds([9])
        .oracle(OracleMode::Final)
        .run()
        .expect("tour grid is well-formed")
}

/// Randomized fault plans at a hostile rate across several seeds: lots of
/// rewinds, elections, squashes and (deterministically) wedged cells —
/// the paths a scheduler rewrite is most likely to perturb.
fn fault_storm_records() -> Vec<RunRecord> {
    let storm: Vec<_> = ["gcc", "fpppp", "equake", "go"]
        .iter()
        .map(|n| ftsim_workloads::profile(n).unwrap_or_else(|| panic!("profile {n} exists")))
        .collect();
    Experiment::grid()
        .workloads(storm)
        .models([MachineConfig::ss2(), MachineConfig::ss3_majority()])
        .fault_rates([20_000.0])
        .budget(2_000)
        .seeds([1, 2, 3])
        .oracle(OracleMode::Off)
        .run()
        .expect("storm grid is well-formed")
}

/// Weighted fault-site mixes on a few benchmarks: non-uniform mixes are
/// a sweep axis of their own, and their cells must stay byte-identical
/// under checkpoint forking (the CI job re-runs this whole test with
/// `FTSIM_CHECKPOINT_FORK=1` against the same golden file).
fn site_mix_records() -> Vec<RunRecord> {
    Experiment::grid()
        .workloads([
            ftsim_workloads::profile("fpppp").expect("profile exists"),
            ftsim_workloads::profile("gcc").expect("profile exists"),
        ])
        .models([MachineConfig::ss2(), MachineConfig::ss3_majority()])
        .fault_rates([0.0, 8_000.0])
        .site_mixes([
            SiteMix::uniform(),
            SiteMix::preset("addr-heavy").expect("preset exists"),
            SiteMix::preset("control-only").expect("preset exists"),
        ])
        .budget(2_000)
        .seeds([5])
        .oracle(OracleMode::Final)
        .run()
        .expect("site-mix grid is well-formed")
}

#[test]
fn scheduler_matches_golden_records() {
    let mut records = tour_records();
    records.extend(fault_storm_records());
    records.extend(site_mix_records());
    let csv = to_csv(&records);

    let path = golden_path();
    if std::env::var_os("FTSIM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &csv).expect("write golden");
        eprintln!("blessed {} records into {}", records.len(), path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {} missing: {e}", path.display()));
    if csv != golden {
        // Byte inequality: report the first divergent row for diagnosis.
        for (i, (got, want)) in csv.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got, want,
                "record row {i} diverged from the scan-based scheduler"
            );
        }
        assert_eq!(
            csv.lines().count(),
            golden.lines().count(),
            "record count diverged from the scan-based scheduler"
        );
        panic!("records diverged from golden (trailing bytes)");
    }

    // Sanity on the golden corpus itself: it must exercise the paths that
    // matter — elections, fault rewinds, branch rewinds and squashes.
    assert!(records.iter().any(|r| r.fault_rewinds > 0));
    assert!(records.iter().any(|r| r.majority_elections > 0));
    assert!(records.iter().any(|r| r.branch_rewinds > 0));
    assert!(records.iter().any(|r| r.faults_squashed_wrong_path > 0));
    // ... and the site-mix axis: weighted cells that injected faults,
    // with per-site fate tables and measured detection latencies.
    assert!(records
        .iter()
        .any(|r| r.site_mix == "addr-heavy" && r.faults_injected > 0 && !r.site_fates.is_empty()));
    assert!(records
        .iter()
        .any(|r| r.site_mix == "control-only" && r.faults_injected > 0));
    assert!(records.iter().any(|r| r.detect_events > 0));
}
