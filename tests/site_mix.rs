//! The site-mix sweep axis end to end: grid shape, record identity,
//! serialization of the new telemetry fields, and — the load-bearing
//! invariant — byte-identical records between cold and checkpoint-forked
//! sweeps under *non-uniform* mixes (every non-firing injector draw
//! consumes exactly one random sample regardless of the mix, so fork
//! bounds and fast-forwarding stay sound).

use ftsim::core::MachineConfig;
use ftsim::harness::{from_csv, from_json, to_csv, to_json, Experiment};
use ftsim_faults::{SiteCounts, SiteMix};
use ftsim_workloads::profile;

fn mixed_grid() -> Experiment {
    Experiment::grid()
        .workloads([profile("equake").unwrap(), profile("gcc").unwrap()])
        .models([MachineConfig::ss2(), MachineConfig::ss3_majority()])
        .fault_rates([0.0, 300.0, 6_000.0])
        .site_mixes([
            SiteMix::uniform(),
            SiteMix::preset("addr-heavy").unwrap(),
            SiteMix::preset("data-only").unwrap(),
        ])
        .budget(2_500)
        .seeds([11])
}

#[test]
fn forked_and_cold_sweeps_are_byte_identical_under_weighted_mixes() {
    let cold = mixed_grid().checkpointing(false).run().unwrap();
    let forked = mixed_grid().checkpointing(true).run().unwrap();
    assert_eq!(to_csv(&cold), to_csv(&forked));
    // The equality proves nothing unless weighted cells actually forked
    // *and* injected faults that exercised the telemetry.
    for mix in ["addr-heavy", "data-only"] {
        assert!(
            cold.iter()
                .any(|r| r.site_mix == mix && r.faults_injected > 0),
            "{mix} cells must inject faults"
        );
    }
    assert!(cold.iter().any(|r| r.detect_events > 0));
    assert!(cold.iter().any(|r| !r.site_fates.is_empty()));
}

#[test]
fn the_mix_axis_multiplies_the_grid_and_brands_records() {
    let records = mixed_grid().run().unwrap();
    assert_eq!(records.len(), 2 * 2 * 3 * 3);
    for mix in ["uniform", "addr-heavy", "data-only"] {
        assert_eq!(
            records.iter().filter(|r| r.site_mix == mix).count(),
            2 * 2 * 3,
            "every mix owns a full sub-grid"
        );
    }
    // Fault-free prefixes are mix-independent: at rate 0 every mix's
    // record differs only in its site_mix label.
    let free: Vec<_> = records
        .iter()
        .filter(|r| r.fault_rate_pm == 0.0 && r.workload == "gcc" && r.model == "SS-2")
        .collect();
    assert_eq!(free.len(), 3);
    for pair in free.windows(2) {
        let (mut a, mut b) = (pair[0].clone(), pair[1].clone());
        a.site_mix = String::new();
        b.site_mix = String::new();
        assert_eq!(a, b, "rate-0 outcomes must not depend on the mix");
    }
}

#[test]
fn weighted_mixes_shift_where_faults_land() {
    let records = mixed_grid().run().unwrap();
    let sites_of = |mix: &str| {
        let mut total = SiteCounts::default();
        for r in records.iter().filter(|r| r.site_mix == mix) {
            total.merge(&SiteCounts::from_compact(&r.site_fates).unwrap());
        }
        total
    };
    let uniform = sites_of("uniform");
    let addr = sites_of("addr-heavy");
    let data = sites_of("data-only");
    use ftsim_faults::InjectionPoint::*;
    // data-only never touches addresses or control.
    assert_eq!(data.get(EffAddr).injected, 0);
    assert_eq!(data.get(BranchDirection).injected, 0);
    assert!(
        data.get(Result).injected + data.get(StoreData).injected + data.get(RobWait).injected > 0
    );
    // addr-heavy concentrates on effective addresses relative to uniform.
    let frac = |s: &SiteCounts| {
        let inj: u64 = s.iter().map(|(_, c)| c.injected).sum();
        s.get(EffAddr).injected as f64 / inj.max(1) as f64
    };
    assert!(
        frac(&addr) > frac(&uniform),
        "addr-heavy ({:.2}) must out-inject uniform ({:.2}) at EffAddr",
        frac(&addr),
        frac(&uniform)
    );
}

#[test]
fn new_fields_round_trip_and_gate_resume_identity() {
    let records = mixed_grid().run().unwrap();
    // Lossless CSV and JSON round trips with live telemetry content.
    assert_eq!(from_csv(&to_csv(&records)).unwrap(), records);
    assert_eq!(from_json(&to_json(&records)).unwrap(), records);

    // same_identity distinguishes mixes: a uniform record must not be
    // resume-matched into an addr-heavy cell.
    let uniform = records
        .iter()
        .find(|r| r.site_mix == "uniform" && r.fault_rate_pm > 0.0)
        .unwrap();
    let mut impostor = uniform.clone();
    impostor.site_mix = "addr-heavy".to_string();
    assert!(!uniform.same_identity(&impostor));
    assert!(uniform.same_identity(&uniform.clone()));
}
